//! The batch query engine: a **persistent worker pool** fed by a bounded
//! MPMC submission queue, with admission control and graceful
//! drain-on-shutdown.
//!
//! # Execution model
//!
//! Constructing a [`QueryEngine`] spawns `workers` long-lived OS threads,
//! all `recv`ing from one bounded [`crossbeam::channel`] of work chunks —
//! the MPMC queue replaces the per-batch `std::thread::scope` spawns of
//! the original engine, so a daemon serving many small batches pays no
//! thread-spawn latency per request.
//!
//! A batch of `(s, t)` pairs is rank-translated once, put into a
//! *processing order* — either the input order, or (default) sorted by
//! the source vertex's rank so consecutive queries touch neighboring
//! label sets — and cut into fixed-size chunks. Each chunk is one queue
//! message; workers pull chunks as they free up (dynamic load balancing:
//! a chunk of hub-heavy queries does not stall the other workers), answer
//! them into an owned buffer ([`pspc_core::SpcIndex::query_rank_batch_into`])
//! and ship it back through a per-batch reply channel. The submitter
//! reassembles answers index-aligned with its input.
//!
//! # Admission control
//!
//! The submission queue holds at most [`EngineConfig::queue_depth`]
//! chunks. [`QueryEngine::try_run`] *rejects* a batch (with
//! [`SubmitError::Saturated`]) instead of queueing it when the queue
//! cannot take all of its chunks — the daemon front-end uses this to shed
//! load instead of building an unbounded backlog. The blocking paths
//! ([`QueryEngine::run`] etc.) apply backpressure instead: they wait for
//! queue slots, which is what a CLI batch job wants.
//!
//! # Shutdown
//!
//! Dropping the engine (or calling [`QueryEngine::into_index`]) closes
//! the queue and joins the workers. Closing is graceful by construction:
//! the channel hands out every queued chunk before reporting disconnect,
//! so in-flight batches complete and only then do workers exit.

use crate::advisor;
use crate::cache::AnswerCache;
use crate::kind::{IndexKind, InsertError};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use pspc_core::SpcIndex;
use pspc_graph::{SpcAnswer, VertexId};
use pspc_obs::{Span, Stage, TimeSeriesRing, WorkloadSketch, DEFAULT_HEAVY_HITTERS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default bound of the submission queue, in chunks.
pub const DEFAULT_QUEUE_DEPTH: usize = 4096;

/// Default workload time-series window length, in seconds.
pub const DEFAULT_WINDOW_SECS: u64 = 10;

/// Closed windows the workload time-series ring retains.
const TIMESERIES_CAPACITY: usize = 64;

/// Sketcher backlog (in pairs) up to which heavy-hitter recording stays
/// exact; each further doubling of the backlog doubles the sampling
/// stride. Low-rate workloads (anything the duty-cycled sketcher drains
/// within a couple of chunks of lag) stay exact; at saturation the
/// backlog a single [`SKETCHER_MAX_IDLE`] accumulates must map to a
/// stride near [`SKETCHER_MAX_STRIDE`], or drains outgrow the idle
/// budget and the sketcher's CPU share climbs back over the bar.
const SKETCHER_EXACT_BACKLOG: usize = 2 * 1024;

/// Upper bound on the sketcher's sampling stride under overload: 1-in-64
/// recording caps the heavy-hitter cost near the totals path's, at the
/// price of ±64-ish noise on reported counts.
const SKETCHER_MAX_STRIDE: usize = 64;

/// After each drain the sketcher idles this many times the drain's busy
/// time, capping its steady-state CPU share near `1/(ratio+1)` ≈ 0.4%
/// of one core. Backlog alone is not enough of a throttle: on a
/// single-core host the sketcher can keep its queue short by stealing a
/// large CPU share from the serving threads, and only an explicit duty
/// cycle forces the backlog (and with it the sampling stride) to grow
/// instead. At the maximum stride the sketcher samples a full-rate
/// stream comfortably within this budget.
const SKETCHER_IDLE_RATIO: u32 = 255;

/// Bound on one duty-cycle pause, so drains — and therefore
/// [`QueryEngine::workload_quiesce`] and shutdown — never lag a burst
/// by more than this.
const SKETCHER_MAX_IDLE: std::time::Duration = std::time::Duration::from_millis(100);

/// Tuning knobs for [`QueryEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Queries per work chunk. Smaller chunks balance better, larger
    /// chunks amortize dispatch; 1024 is a good default for microsecond
    /// queries.
    pub chunk_size: usize,
    /// Process queries in source-rank order (cache-friendly sharding)
    /// instead of input order. Answers are merged back to input order
    /// either way.
    pub sort_by_rank: bool,
    /// Submission-queue bound in chunks (0 = [`DEFAULT_QUEUE_DEPTH`]).
    /// [`QueryEngine::try_run`] rejects batches that do not fit; the
    /// blocking paths wait for free slots instead.
    pub queue_depth: usize,
    /// Total `(s, t) → answer` cache entries across all shards
    /// (0 disables the cache — the default, so batch jobs that never
    /// repeat a pair pay nothing).
    pub cache_capacity: usize,
    /// Cache shard count (0 = [`crate::cache::DEFAULT_SHARDS`]); ignored
    /// when the cache is disabled.
    pub cache_shards: usize,
    /// Feed the streaming workload sketch (distinct-pair HLL, heavy
    /// hitters, windowed time series) from every batch. On by default —
    /// recording is wait-free and a few nanoseconds per pair; the flag
    /// exists so the overhead bench can measure exactly that.
    pub workload_sketch: bool,
    /// Workload time-series window length in seconds
    /// (0 = [`DEFAULT_WINDOW_SECS`]).
    pub window_secs: u64,
    /// Let the cache advisor resize the result cache between windows
    /// (`pspc serve --cache-adaptive`). Without it the advisor only
    /// publishes its recommendation.
    pub cache_adaptive: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            chunk_size: 1024,
            sort_by_rank: true,
            queue_depth: 0,
            cache_capacity: 0,
            cache_shards: 0,
            workload_sketch: true,
            window_secs: 0,
            cache_adaptive: false,
        }
    }
}

/// Wall-clock facts about one executed batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchReport {
    /// Number of queries answered.
    pub queries: usize,
    /// Worker threads that can have participated (pool size clamped to
    /// the chunk count).
    pub workers: usize,
    /// Work chunks dispensed.
    pub chunks: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Answers with a finite distance.
    pub reachable: usize,
}

impl BatchReport {
    /// Sustained throughput in queries per second.
    pub fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.queries as f64 / self.wall_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Admission-control rejection from [`QueryEngine::try_run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The submission queue cannot take the batch right now; retry later
    /// or shed the request.
    Saturated {
        /// Chunks currently queued.
        queued: usize,
        /// Queue bound in chunks.
        capacity: usize,
    },
    /// The batch has more chunks than the whole queue holds, so it could
    /// never be admitted; split it or raise `queue_depth`/`chunk_size`.
    TooLarge {
        /// Chunks the batch would occupy.
        chunks: usize,
        /// Queue bound in chunks.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SubmitError::Saturated { queued, capacity } => write!(
                f,
                "submission queue saturated ({queued}/{capacity} chunks queued)"
            ),
            SubmitError::TooLarge { chunks, capacity } => write!(
                f,
                "batch of {chunks} chunks exceeds the queue bound of {capacity}"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One queued unit of work: a chunk of some batch's gathered rank pairs.
struct Task {
    /// The whole batch's rank pairs, in processing order.
    batch: Arc<Vec<(u32, u32)>>,
    /// Chunk bounds within `batch`.
    lo: usize,
    hi: usize,
    /// Chunk index (for the input-order merge).
    chunk: usize,
    /// When the chunk entered the submission queue (for the queue-wait
    /// stage of request traces).
    enqueued: Instant,
    /// Record per-query latencies.
    time_queries: bool,
    /// Per-batch reply queue.
    reply: Sender<Part>,
}

/// `(chunk index, answers, per-query nanoseconds, queue-wait ns,
/// execution ns)` — the last two feed request traces and the per-worker
/// gauges.
type Part = (usize, Vec<SpcAnswer>, Vec<u64>, u64, u64);

/// Per-worker busy-time/chunk counters, indexed by worker id. Always on:
/// the cost is two `Relaxed` `fetch_add`s per *chunk* (≥1024 queries by
/// default), invisible next to the chunk's execution itself.
struct WorkerStats {
    busy_ns: Box<[AtomicU64]>,
    chunks: Box<[AtomicU64]>,
}

impl WorkerStats {
    fn new(workers: usize) -> Self {
        WorkerStats {
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            chunks: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// One pool worker's lifetime counters, as sampled for metrics
/// (`pspc_worker_busy_seconds` / `pspc_worker_chunks_total`): pool
/// imbalance shows up as busy-time skew across workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Nanoseconds this worker spent executing chunks.
    pub busy_ns: u64,
    /// Chunks this worker executed.
    pub chunks: u64,
}

/// The engine's workload-analytics state: the streaming sketch, the
/// windowed time-series ring, the advisor's latest verdict and the
/// background sketcher thread.
///
/// Recording splits in two so the request path never takes the sketch
/// locks: totals (HLL + pair counter) are wait-free and recorded
/// inline, while the heavy-hitter updates — `O(k)` with three
/// index-map touches per pair on distinct-heavy traffic — are shipped
/// to the sketcher thread through an unbounded channel. `pending`
/// counts shipped-but-unprocessed batches so readers that need the
/// hitters up to date ([`QueryEngine::workload_quiesce`]) can wait for
/// the queue to drain.
struct WorkloadState {
    sketch: Arc<WorkloadSketch>,
    ring: TimeSeriesRing,
    /// Latest recommended cache capacity (0 until the first verdict).
    recommended: AtomicU64,
    /// Window id the advisor last ran for (one verdict per window).
    advised_window: AtomicU64,
    /// Batches shipped to the sketcher and not yet folded in.
    pending: Arc<AtomicU64>,
    /// `None` only during teardown.
    hitter_tx: Option<Sender<Vec<(VertexId, VertexId)>>>,
    sketcher: Option<std::thread::JoinHandle<()>>,
}

impl WorkloadState {
    fn new(window_secs: u64) -> Self {
        let sketch = Arc::new(WorkloadSketch::new(DEFAULT_HEAVY_HITTERS));
        let pending = Arc::new(AtomicU64::new(0));
        let (hitter_tx, hitter_rx) = channel::unbounded::<Vec<(VertexId, VertexId)>>();
        let sketcher = {
            let sketch = Arc::clone(&sketch);
            let pending = Arc::clone(&pending);
            std::thread::Builder::new()
                .name("pspc-sketcher".into())
                .spawn(move || {
                    while let Ok(batch) = hitter_rx.recv() {
                        // Drain whatever has queued up behind this batch
                        // and derive a sampling stride from the backlog:
                        // exact recording while the sketcher keeps up,
                        // systematic 1-in-`stride` sampling once the
                        // serving threads outpace it — heavy-hitter
                        // counts stay unbiased and the sketcher's CPU
                        // share stays bounded instead of competing with
                        // request processing.
                        let mut batches = vec![batch];
                        while let Ok(more) = hitter_rx.try_recv() {
                            batches.push(more);
                        }
                        let queued: usize = batches.iter().map(Vec::len).sum();
                        let stride = (queued / SKETCHER_EXACT_BACKLOG)
                            .next_power_of_two()
                            .min(SKETCHER_MAX_STRIDE);
                        let t0 = Instant::now();
                        for b in &batches {
                            sketch.record_hitters_sampled(b, stride);
                        }
                        pending.fetch_sub(batches.len() as u64, Ordering::Release);
                        // Duty cycle: pay for the busy time just spent
                        // with a proportionally longer pause before the
                        // next drain. Sends during the pause enqueue
                        // without waking anyone, so the per-batch cost
                        // on the serving threads stays a cheap push.
                        let idle = (t0.elapsed() * SKETCHER_IDLE_RATIO).min(SKETCHER_MAX_IDLE);
                        if !idle.is_zero() {
                            std::thread::sleep(idle);
                        }
                    }
                })
                .expect("spawning sketcher thread")
        };
        WorkloadState {
            sketch,
            ring: TimeSeriesRing::new(window_secs, TIMESERIES_CAPACITY),
            recommended: AtomicU64::new(0),
            advised_window: AtomicU64::new(0),
            pending,
            hitter_tx: Some(hitter_tx),
            sketcher: Some(sketcher),
        }
    }

    /// Ships one batch's heavy-hitter updates to the sketcher thread,
    /// falling back to inline recording during teardown.
    fn ship_hitters(&self, pairs: &[(VertexId, VertexId)]) {
        self.pending.fetch_add(1, Ordering::Release);
        let shipped = self
            .hitter_tx
            .as_ref()
            .is_some_and(|tx| tx.send(pairs.to_vec()).is_ok());
        if !shipped {
            self.sketch.record_hitters(pairs);
            self.pending.fetch_sub(1, Ordering::Release);
        }
    }

    fn shutdown(&mut self) {
        self.hitter_tx.take();
        if let Some(h) = self.sketcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WorkloadState {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Wall-clock unix seconds (0 before the epoch, which cannot happen on a
/// sane clock).
fn unix_now_s() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// Recycler for the answer buffers that shuttle between workers and
/// submitters.
///
/// Workers fill an owned `Vec<SpcAnswer>` per chunk and ship it through
/// the reply channel; without reuse every chunk of every batch is a
/// fresh allocation. The pool threads those buffers back through the
/// batch path: the submitter returns each part's buffer after scattering
/// its answers, and workers check buffers out (capacity intact) instead
/// of allocating. Bounded so a burst of huge batches cannot pin memory
/// forever.
struct BufferPool {
    free: Mutex<Vec<Vec<SpcAnswer>>>,
    max: usize,
}

impl BufferPool {
    fn new(max: usize) -> Self {
        BufferPool {
            free: Mutex::new(Vec::new()),
            max,
        }
    }

    /// Checks out an empty buffer, keeping whatever capacity it grew to.
    fn take(&self) -> Vec<SpcAnswer> {
        self.free.lock().pop().unwrap_or_default()
    }

    /// Returns a buffer for reuse (dropped if the pool is full).
    fn put(&self, mut buf: Vec<SpcAnswer>) {
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.max {
            free.push(buf);
        }
    }
}

fn worker_loop(
    index: Arc<IndexKind>,
    rx: Receiver<Task>,
    buffers: Arc<BufferPool>,
    stats: Arc<WorkerStats>,
    id: usize,
) {
    // recv() drains every queued chunk before reporting disconnect, so a
    // shutdown never drops admitted work.
    while let Ok(task) = rx.recv() {
        let dequeued = Instant::now();
        // Saturating: Instant::duration_since never goes negative.
        let wait_ns = dequeued.duration_since(task.enqueued).as_nanos() as u64;
        let slice = &task.batch[task.lo..task.hi];
        let mut out = buffers.take();
        let mut lat = Vec::new();
        if task.time_queries {
            // One read-lock acquisition per chunk, same as the untimed
            // path — timing must not weaken the insert/query
            // consistency the kind documents.
            index.query_rank_batch_timed_into(slice, &mut out, &mut lat);
        } else {
            index.query_rank_batch_into(slice, &mut out);
        }
        let exec_ns = dequeued.elapsed().as_nanos() as u64;
        stats.busy_ns[id].fetch_add(exec_ns, Ordering::Relaxed);
        stats.chunks[id].fetch_add(1, Ordering::Relaxed);
        // A submitter that vanished (disconnected reply) is not an error
        // for the pool; the work is simply discarded.
        let _ = task.reply.send((task.chunk, out, lat, wait_ns, exec_ns));
    }
}

/// A throughput-oriented batch query engine owning a built index (any
/// [`IndexKind`]) and a persistent pool of worker threads.
///
/// See the [module docs](self) for the execution model and the crate docs
/// for a quick start. The engine is `Sync`: a server shares one behind an
/// `Arc` across connection handler threads, each submitting batches
/// concurrently. Dynamic indexes additionally accept live edge
/// insertions through [`QueryEngine::apply_inserts`].
pub struct QueryEngine {
    index: Arc<IndexKind>,
    cfg: EngineConfig,
    /// `None` only during teardown.
    tx: Option<Sender<Task>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes admission decisions so a capacity check and the
    /// subsequent multi-chunk enqueue are atomic against other admitted
    /// submitters.
    submit_lock: Mutex<()>,
    /// Recycled answer buffers shared by workers and submitters.
    buffers: Arc<BufferPool>,
    /// Per-worker busy-time/chunk counters (always on).
    worker_stats: Arc<WorkerStats>,
    /// The hot-pair result cache, when `cfg.cache_capacity > 0`. Probed
    /// before chunking and back-filled after; entries are stamped with
    /// the index generation so inserts invalidate implicitly.
    cache: Option<AnswerCache>,
    /// Workload analytics (sketches + time series + advisor), when
    /// `cfg.workload_sketch`.
    workload: Option<WorkloadState>,
}

impl QueryEngine {
    /// Engine with default configuration (all cores, 1024-query chunks,
    /// rank-sorted sharding, default queue depth).
    pub fn new(index: SpcIndex) -> Self {
        Self::with_config(index, EngineConfig::default())
    }

    /// Engine over an undirected index with explicit configuration
    /// (the dominant case keeps its dedicated constructor).
    pub fn with_config(index: SpcIndex, cfg: EngineConfig) -> Self {
        Self::with_kind(IndexKind::Undirected(index), cfg)
    }

    /// Engine over any [`IndexKind`] with explicit configuration. Spawns
    /// the worker pool.
    pub fn with_kind(index: impl Into<IndexKind>, cfg: EngineConfig) -> Self {
        let index = Arc::new(index.into());
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.workers
        };
        let depth = if cfg.queue_depth == 0 {
            DEFAULT_QUEUE_DEPTH
        } else {
            cfg.queue_depth
        };
        let (tx, rx) = channel::bounded::<Task>(depth);
        // Enough pooled buffers for every worker to hold one in flight
        // plus a healthy margin of parts awaiting their submitter's
        // scatter; beyond that, returns are dropped rather than hoarded.
        let buffers = Arc::new(BufferPool::new(4 * workers + 16));
        let worker_stats = Arc::new(WorkerStats::new(workers));
        let handles = (0..workers)
            .map(|i| {
                let index = Arc::clone(&index);
                let rx = rx.clone();
                let buffers = Arc::clone(&buffers);
                let stats = Arc::clone(&worker_stats);
                std::thread::Builder::new()
                    .name(format!("pspc-worker-{i}"))
                    .spawn(move || worker_loop(index, rx, buffers, stats, i))
                    .expect("spawning engine worker")
            })
            .collect();
        let cache = (cfg.cache_capacity > 0)
            .then(|| AnswerCache::new(cfg.cache_capacity, cfg.cache_shards));
        let window_secs = if cfg.window_secs == 0 {
            DEFAULT_WINDOW_SECS
        } else {
            cfg.window_secs
        };
        let workload = cfg.workload_sketch.then(|| WorkloadState::new(window_secs));
        QueryEngine {
            index,
            cfg,
            tx: Some(tx),
            handles,
            submit_lock: Mutex::new(()),
            buffers,
            worker_stats,
            cache,
            workload,
        }
    }

    /// Lifetime busy-time/chunk counters per pool worker (index-aligned
    /// with worker ids). Racy-but-coherent gauges for metrics endpoints.
    pub fn worker_stats(&self) -> Vec<WorkerStat> {
        self.worker_stats
            .busy_ns
            .iter()
            .zip(self.worker_stats.chunks.iter())
            .map(|(b, c)| WorkerStat {
                busy_ns: b.load(Ordering::Relaxed),
                chunks: c.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The result cache, when enabled ([`EngineConfig::cache_capacity`]
    /// \> 0) — e.g. for metrics exposition via
    /// [`crate::cache::AnswerCache::stats`].
    pub fn cache(&self) -> Option<&AnswerCache> {
        self.cache.as_ref()
    }

    /// The streaming workload sketch (distinct-pair HLL + heavy
    /// hitters), when [`EngineConfig::workload_sketch`] is on — the data
    /// behind `GET /debug/hotspots` and the `pspc_distinct_pairs_*`
    /// metric families.
    pub fn workload(&self) -> Option<&WorkloadSketch> {
        self.workload.as_ref().map(|w| w.sketch.as_ref())
    }

    /// Waits (bounded by `timeout`) for the background sketcher thread
    /// to fold every shipped batch into the heavy-hitter sketches, so a
    /// subsequent [`WorkloadSketch::hot_pairs`] /
    /// [`WorkloadSketch::hot_sources`] read reflects all completed
    /// batches. Returns `true` once the queue is drained, `false` on
    /// timeout (under sustained load the queue may never be empty —
    /// callers serve the current values either way). Totals (distinct
    /// estimate, pair counter) are recorded inline and never need this.
    pub fn workload_quiesce(&self, timeout: std::time::Duration) -> bool {
        let Some(w) = &self.workload else { return true };
        let deadline = Instant::now() + timeout;
        while w.pending.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// The windowed serving time series (qps, hit rate, windowed
    /// p50/p99), when [`EngineConfig::workload_sketch`] is on — the data
    /// behind `GET /debug/timeseries` and the `pspc_window_*` gauges.
    pub fn timeseries(&self) -> Option<&TimeSeriesRing> {
        self.workload.as_ref().map(|w| &w.ring)
    }

    /// The advisor's most recent recommended cache capacity (`None`
    /// while the workload sketch is off or before the first verdict).
    pub fn recommended_cache_capacity(&self) -> Option<u64> {
        let w = self.workload.as_ref()?;
        match w.recommended.load(Ordering::Relaxed) {
            0 => None,
            r => Some(r),
        }
    }

    /// Computes a fresh advisor verdict from the live sketch and cache
    /// gauges without applying it (`None` when the workload sketch is
    /// off). The applied path runs once per window inside the batch
    /// pipeline; this is for inspection (benches, debug endpoints).
    pub fn cache_advice(&self) -> Option<advisor::CacheAdvice> {
        let w = self.workload.as_ref()?;
        Some(advisor::advise(
            w.sketch.distinct_pairs(),
            self.cache.as_ref().map_or(0, AnswerCache::capacity),
            self.cache_hit_rate(),
        ))
    }

    /// Lifetime cache hit rate in `0..=1` (0 without a cache or before
    /// any probe).
    fn cache_hit_rate(&self) -> f64 {
        self.cache.as_ref().map_or(0.0, |c| {
            let s = c.stats();
            let probes = s.hits + s.misses;
            if probes == 0 {
                0.0
            } else {
                s.hits as f64 / probes as f64
            }
        })
    }

    /// Feeds one completed batch into the workload sketch and the time
    /// series, and runs the advisor when a window has turned. The
    /// request-path cost is wait-free (relaxed atomics plus one batch
    /// copy); the locked heavy-hitter updates run on the sketcher
    /// thread, and the advisor runs on at most one batch per window.
    fn record_workload(&self, pairs: &[(VertexId, VertexId)], cache_hits: u64, wall_secs: f64) {
        let Some(w) = &self.workload else { return };
        if pairs.is_empty() {
            return;
        }
        w.sketch.record_totals(pairs);
        w.ship_hitters(pairs);
        let now_s = unix_now_s();
        w.ring.record(
            pairs.len() as u64,
            cache_hits,
            (wall_secs * 1e9) as u64,
            now_s,
        );
        let wid = now_s / w.ring.window_secs();
        if w.advised_window.swap(wid, Ordering::Relaxed) == wid {
            return;
        }
        let advice = advisor::advise(
            w.sketch.distinct_pairs(),
            self.cache.as_ref().map_or(0, AnswerCache::capacity),
            self.cache_hit_rate(),
        );
        w.recommended
            .store(advice.recommended as u64, Ordering::Relaxed);
        if self.cfg.cache_adaptive && advice.resize {
            if let Some(cache) = &self.cache {
                cache.resize(advice.recommended);
            }
        }
    }

    /// The undirected index being served.
    ///
    /// # Panics
    /// Panics when the engine serves a directed or dynamic index — those
    /// callers go through [`QueryEngine::kind`].
    pub fn index(&self) -> &SpcIndex {
        match &*self.index {
            IndexKind::Undirected(i) => i,
            other => panic!(
                "QueryEngine::index: engine serves a {} index; use kind()",
                other.name()
            ),
        }
    }

    /// The index kind being served.
    pub fn kind(&self) -> &IndexKind {
        &self.index
    }

    /// Applies edge insertions to a served **dynamic** index under its
    /// write lock: in-flight query chunks drain first, the labeling is
    /// repaired, and subsequent chunks observe the post-insert graph.
    /// Returns how many edges were new; rejects non-dynamic kinds with
    /// [`InsertError::NotDynamic`] and out-of-range endpoints without
    /// applying anything.
    pub fn apply_inserts(&self, edges: &[(VertexId, VertexId)]) -> Result<usize, InsertError> {
        self.index.insert_edges(edges)
    }

    /// Shuts the pool down (draining queued work) and recovers the
    /// undirected index (e.g. to rebuild the engine with a new config).
    ///
    /// # Panics
    /// Panics when the engine serves a directed or dynamic index.
    pub fn into_index(mut self) -> SpcIndex {
        self.shutdown();
        let arc = Arc::clone(&self.index);
        drop(self);
        // Workers are joined, so this is the last reference.
        match Arc::try_unwrap(arc) {
            Ok(IndexKind::Undirected(i)) => i,
            Ok(other) => panic!(
                "QueryEngine::into_index: engine serves a {} index",
                other.name()
            ),
            Err(a) => match &*a {
                IndexKind::Undirected(i) => i.clone(),
                other => panic!(
                    "QueryEngine::into_index: engine serves a {} index",
                    other.name()
                ),
            },
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len().max(1)
    }

    /// The submission-queue bound, in chunks.
    pub fn queue_depth(&self) -> usize {
        if self.cfg.queue_depth == 0 {
            DEFAULT_QUEUE_DEPTH
        } else {
            self.cfg.queue_depth
        }
    }

    /// Chunks currently waiting in the submission queue (a live gauge for
    /// metrics endpoints; racy by nature).
    pub fn queued_chunks(&self) -> usize {
        self.tx.as_ref().map_or(0, Sender::len)
    }

    /// Answers a batch; answers are index-aligned with `pairs`. Blocks
    /// for queue slots when the pool is saturated (backpressure).
    pub fn run(&self, pairs: &[(VertexId, VertexId)]) -> Vec<SpcAnswer> {
        self.run_with_report(pairs).0
    }

    /// Answers a batch and reports wall-clock facts.
    pub fn run_with_report(&self, pairs: &[(VertexId, VertexId)]) -> (Vec<SpcAnswer>, BatchReport) {
        let (answers, report, _) = self
            .execute(pairs, false, false, None)
            .expect("blocking submission cannot be rejected");
        (answers, report)
    }

    /// Admission-controlled batch execution: **rejects** instead of
    /// queueing when the submission queue cannot take the whole batch.
    /// This is the entry point for network front-ends that must shed load
    /// when saturated rather than hang clients.
    pub fn try_run(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<(Vec<SpcAnswer>, BatchReport), SubmitError> {
        let (answers, report, _) = self.execute(pairs, false, true, None)?;
        Ok((answers, report))
    }

    /// [`QueryEngine::try_run`] with per-stage attribution into `span`:
    /// cache-probe, prepare (rank translate + order + dispatch),
    /// queue-wait (longest chunk enqueue→dequeue delay), execute (summed
    /// worker busy time over the batch's chunks) and merge. The daemon
    /// threads each request's [`Span`] through here so `/debug/trace`,
    /// `/debug/slow` and the stage histograms see inside the engine.
    pub fn try_run_traced(
        &self,
        pairs: &[(VertexId, VertexId)],
        span: &mut Span,
    ) -> Result<(Vec<SpcAnswer>, BatchReport), SubmitError> {
        let (answers, report, _) = self.execute(pairs, false, true, Some(span))?;
        Ok((answers, report))
    }

    /// Answers a batch, additionally timing every query individually
    /// (nanoseconds, in processing order — suitable for percentile
    /// latency reports; the per-query `Instant` reads add measurable
    /// overhead, so throughput numbers should come from
    /// [`QueryEngine::run_with_report`]).
    pub fn run_with_latencies(
        &self,
        pairs: &[(VertexId, VertexId)],
    ) -> (Vec<SpcAnswer>, BatchReport, Vec<u64>) {
        self.execute(pairs, true, false, None)
            .expect("blocking submission cannot be rejected")
    }

    /// Closes the submission queue and joins the workers after they drain
    /// it, then stops the workload sketcher thread. Idempotent; also
    /// performed on drop.
    fn shutdown(&mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(w) = &mut self.workload {
            w.shutdown();
        }
    }

    /// Cache front-end over [`QueryEngine::execute_pool`]: probes the
    /// result cache for every pair, submits **only the missing pairs**
    /// to the worker pool and back-fills their answers, all stamped with
    /// the index generation loaded before the probe (a concurrent insert
    /// can therefore only reject fresh entries, never admit stale ones).
    /// With the cache disabled this is a straight passthrough.
    ///
    /// On the timed path the returned latency vector is the hit probes'
    /// latencies followed by the pool's per-query latencies — `n` samples
    /// either way, suitable for percentile reports.
    ///
    /// Statistics caveat: when admission control rejects the residual
    /// batch, probe hits/misses have already been counted — a shed batch
    /// leaves its probe trace in [`crate::cache::CacheStats`].
    fn execute(
        &self,
        pairs: &[(VertexId, VertexId)],
        time_queries: bool,
        admission: bool,
        mut span: Option<&mut Span>,
    ) -> Result<(Vec<SpcAnswer>, BatchReport, Vec<u64>), SubmitError> {
        let Some(cache) = &self.cache else {
            let out = self.execute_pool(pairs, time_queries, admission, span)?;
            self.record_workload(pairs, 0, out.1.wall_secs);
            return Ok(out);
        };
        let n = pairs.len();
        if n == 0 {
            return self.execute_pool(pairs, time_queries, admission, span);
        }
        let t0 = Instant::now();
        // Load the generation *before* computing anything: an insert
        // landing mid-batch bumps it, so every entry filled below is
        // stamped stale and rejected on the next probe — conservative by
        // construction.
        let generation = self.index.generation();

        let mut answers = vec![SpcAnswer::UNREACHABLE; n];
        let mut missing_idx: Vec<u32> = Vec::new();
        let mut missing_pairs: Vec<(VertexId, VertexId)> = Vec::new();
        let mut latencies = Vec::new();
        for (i, &p) in pairs.iter().enumerate() {
            let probe_t0 = time_queries.then(Instant::now);
            match cache.get(p, generation) {
                Some(a) => {
                    answers[i] = a;
                    if let Some(t) = probe_t0 {
                        latencies.push(t.elapsed().as_nanos() as u64);
                    }
                }
                None => {
                    missing_idx.push(i as u32);
                    missing_pairs.push(p);
                }
            }
        }
        if let Some(s) = span.as_mut() {
            s.add(Stage::CacheProbe, t0.elapsed().as_nanos() as u64);
        }

        let (chunks, workers) = if missing_pairs.is_empty() {
            (0, 0)
        } else {
            let (sub_answers, sub_report, sub_lat) =
                self.execute_pool(&missing_pairs, time_queries, admission, span)?;
            for (k, &i) in missing_idx.iter().enumerate() {
                answers[i as usize] = sub_answers[k];
                cache.insert(missing_pairs[k], sub_answers[k], generation);
            }
            latencies.extend(sub_lat);
            (sub_report.chunks, sub_report.workers)
        };

        let report = BatchReport {
            queries: n,
            workers,
            chunks,
            wall_secs: t0.elapsed().as_secs_f64(),
            reachable: answers.iter().filter(|a| a.is_reachable()).count(),
        };
        self.record_workload(pairs, (n - missing_idx.len()) as u64, report.wall_secs);
        Ok((answers, report, latencies))
    }

    /// The pool path: rank-translate, order, chunk, dispatch, merge.
    fn execute_pool(
        &self,
        pairs: &[(VertexId, VertexId)],
        time_queries: bool,
        admission: bool,
        mut span: Option<&mut Span>,
    ) -> Result<(Vec<SpcAnswer>, BatchReport, Vec<u64>), SubmitError> {
        let n = pairs.len();
        let chunk = self.cfg.chunk_size.max(1);
        let t0 = Instant::now();
        if n == 0 {
            let report = BatchReport {
                queries: 0,
                workers: 0,
                chunks: 0,
                wall_secs: t0.elapsed().as_secs_f64(),
                reachable: 0,
            };
            return Ok((Vec::new(), report, Vec::new()));
        }

        // Translate vertex ids to ranks once — the sort key and the
        // queries both live in rank space, so workers never touch the
        // rank array.
        let ranked: Vec<(u32, u32)> = self.index.rank_pairs(pairs);

        // Processing order: input indices, optionally sorted by the
        // source's rank (then target's) for cache-friendly label access.
        let mut order: Vec<u32> = (0..n as u32).collect();
        if self.cfg.sort_by_rank {
            order.sort_unstable_by_key(|&i| ranked[i as usize]);
        }
        // Gather once so workers index straight into the shared batch.
        let batch: Arc<Vec<(u32, u32)>> = Arc::new(
            order
                .iter()
                .map(|&i| ranked[i as usize])
                .collect::<Vec<_>>(),
        );

        let num_chunks = n.div_ceil(chunk);
        let tx = self.tx.as_ref().expect("engine pool is running");
        let (reply_tx, reply_rx) = channel::unbounded::<Part>();
        let make_task = |c: usize| Task {
            batch: Arc::clone(&batch),
            lo: c * chunk,
            hi: (c * chunk + chunk).min(n),
            chunk: c,
            enqueued: Instant::now(),
            time_queries,
            reply: reply_tx.clone(),
        };

        if admission {
            let _admit = self.submit_lock.lock();
            let capacity = self.queue_depth();
            if num_chunks > capacity {
                return Err(SubmitError::TooLarge {
                    chunks: num_chunks,
                    capacity,
                });
            }
            let queued = tx.len();
            if queued + num_chunks > capacity {
                return Err(SubmitError::Saturated { queued, capacity });
            }
            // Capacity is reserved under the lock; these sends cannot
            // block against other admitted submitters (blocking-path
            // submitters racing in can momentarily overfill, which only
            // means a short backpressure wait here).
            for c in 0..num_chunks {
                tx.send(make_task(c)).expect("engine workers alive");
            }
        } else {
            for c in 0..num_chunks {
                // Backpressure: waits for queue slots when saturated.
                tx.send(make_task(c)).expect("engine workers alive");
            }
        }
        drop(reply_tx);
        if let Some(s) = span.as_mut() {
            // Everything up to and including dispatch: rank translation,
            // ordering, gathering, admission and the sends.
            s.add(Stage::Prepare, t0.elapsed().as_nanos() as u64);
        }

        // Collect every chunk's part, then merge in chunk order: keeps
        // the answer scatter cache-friendly and the latency vector
        // deterministic (aligned with the processing order).
        let mut parts: Vec<Part> = Vec::with_capacity(num_chunks);
        while parts.len() < num_chunks {
            match reply_rx.recv() {
                Ok(p) => parts.push(p),
                Err(_) => panic!("engine worker terminated with a batch in flight"),
            }
        }
        parts.sort_unstable_by_key(|&(c, ..)| c);
        if let Some(s) = span.as_mut() {
            for &(_, _, _, wait_ns, exec_ns) in &parts {
                // Queue wait is the *longest* chunk delay (the batch
                // cannot finish sooner); execution is *summed* worker
                // busy time, so it can exceed wall clock when chunks ran
                // in parallel.
                s.add_max(Stage::QueueWait, wait_ns);
                s.add(Stage::Execute, exec_ns);
            }
        }
        let merge_t0 = Instant::now();
        let mut answers = vec![SpcAnswer::UNREACHABLE; n];
        let mut latencies = Vec::new();
        if time_queries {
            latencies.reserve(n);
        }
        for (c, out, lat, _, _) in parts {
            let lo = c * chunk;
            for (k, &a) in out.iter().enumerate() {
                answers[order[lo + k] as usize] = a;
            }
            // Thread the drained buffer back to the workers.
            self.buffers.put(out);
            latencies.extend(lat);
        }
        if let Some(s) = span.as_mut() {
            s.add(Stage::Merge, merge_t0.elapsed().as_nanos() as u64);
        }

        let report = BatchReport {
            queries: n,
            workers: self.workers().min(num_chunks),
            chunks: num_chunks,
            wall_secs: t0.elapsed().as_secs_f64(),
            reachable: answers.iter().filter(|a| a.is_reachable()).count(),
        };
        Ok((answers, report, latencies))
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspc_core::{build_pspc, PspcConfig};
    use pspc_graph::generators::barabasi_albert;

    fn engine(cfg: EngineConfig) -> QueryEngine {
        let g = barabasi_albert(300, 3, 11);
        let (index, _) = build_pspc(&g, &PspcConfig::default());
        QueryEngine::with_config(index, cfg)
    }

    fn pairs(n: usize, modulo: u32, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % modulo as u64) as u32
        };
        (0..n).map(|_| (next(), next())).collect()
    }

    #[test]
    fn answers_are_input_ordered_for_every_config() {
        for workers in [1, 2, 4] {
            for sort_by_rank in [false, true] {
                for chunk_size in [1, 7, 1024] {
                    let e = engine(EngineConfig {
                        workers,
                        chunk_size,
                        sort_by_rank,
                        ..EngineConfig::default()
                    });
                    let ps = pairs(513, 300, 0xFEED);
                    let expect = e.index().query_batch_sequential(&ps);
                    let got = e.run(&ps);
                    assert_eq!(
                        got, expect,
                        "workers={workers} sort={sort_by_rank} chunk={chunk_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch() {
        let e = engine(EngineConfig::default());
        let (answers, report) = e.run_with_report(&[]);
        assert!(answers.is_empty());
        assert_eq!(report.queries, 0);
        assert_eq!(report.chunks, 0);
    }

    #[test]
    fn report_counts_reachable_and_chunks() {
        let e = engine(EngineConfig {
            workers: 2,
            chunk_size: 100,
            sort_by_rank: true,
            ..EngineConfig::default()
        });
        let ps = pairs(250, 300, 3);
        let (answers, report) = e.run_with_report(&ps);
        assert_eq!(report.queries, 250);
        assert_eq!(report.chunks, 3);
        assert_eq!(
            report.reachable,
            answers.iter().filter(|a| a.is_reachable()).count()
        );
        assert!(report.qps() > 0.0);
    }

    #[test]
    fn latencies_cover_every_query() {
        let e = engine(EngineConfig {
            workers: 2,
            chunk_size: 64,
            sort_by_rank: true,
            ..EngineConfig::default()
        });
        let ps = pairs(333, 300, 5);
        let (answers, _, lat) = e.run_with_latencies(&ps);
        assert_eq!(answers, e.index().query_batch_sequential(&ps));
        assert_eq!(lat.len(), ps.len());
    }

    #[test]
    fn workers_clamped_to_chunks() {
        let e = engine(EngineConfig {
            workers: 64,
            chunk_size: 1000,
            sort_by_rank: false,
            ..EngineConfig::default()
        });
        let ps = pairs(10, 300, 9);
        let (_, report) = e.run_with_report(&ps);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn buffer_pool_recycles_capacity_and_stays_bounded() {
        let pool = BufferPool::new(2);
        let mut b = pool.take();
        b.reserve(100);
        let cap = b.capacity();
        b.push(SpcAnswer::UNREACHABLE);
        pool.put(b);
        let b2 = pool.take();
        assert!(b2.is_empty(), "returned buffers must come back cleared");
        assert!(b2.capacity() >= cap, "capacity must survive recycling");
        for _ in 0..3 {
            pool.put(Vec::with_capacity(1));
        }
        assert_eq!(pool.free.lock().len(), 2, "pool must stay bounded");
    }

    #[test]
    fn pool_survives_many_batches_and_reuse() {
        // A persistent pool must answer batch after batch without
        // respawning; interleave sizes to exercise queue reuse.
        let e = engine(EngineConfig {
            workers: 3,
            chunk_size: 32,
            sort_by_rank: true,
            ..EngineConfig::default()
        });
        for round in 0..20 {
            let ps = pairs(1 + round * 37, 300, round as u64 + 1);
            assert_eq!(e.run(&ps), e.index().query_batch_sequential(&ps));
        }
    }

    #[test]
    fn try_run_accepts_when_idle_and_rejects_oversized() {
        let e = engine(EngineConfig {
            workers: 2,
            chunk_size: 16,
            sort_by_rank: true,
            queue_depth: 4,
            ..EngineConfig::default()
        });
        let ps = pairs(60, 300, 7); // 4 chunks: exactly fits
        let (answers, _) = e.try_run(&ps).expect("fits the queue");
        assert_eq!(answers, e.index().query_batch_sequential(&ps));
        let big = pairs(200, 300, 8); // 13 chunks: can never fit
        assert_eq!(
            e.try_run(&big).map(|_| ()),
            Err(SubmitError::TooLarge {
                chunks: 13,
                capacity: 4
            })
        );
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let e = engine(EngineConfig {
            workers: 4,
            chunk_size: 64,
            sort_by_rank: true,
            ..EngineConfig::default()
        });
        std::thread::scope(|s| {
            for seed in 1..=6u64 {
                let e = &e;
                s.spawn(move || {
                    let ps = pairs(400, 300, seed);
                    assert_eq!(e.run(&ps), e.index().query_batch_sequential(&ps));
                });
            }
        });
    }

    #[test]
    fn into_index_drains_and_recovers() {
        let e = engine(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let ps = pairs(100, 300, 4);
        let expect = e.index().query_batch_sequential(&ps);
        assert_eq!(e.run(&ps), expect);
        let index = e.into_index();
        assert_eq!(index.query_batch_sequential(&ps), expect);
    }

    #[test]
    fn cached_engine_answers_match_and_repeat_batches_hit() {
        let e = engine(EngineConfig {
            workers: 2,
            chunk_size: 64,
            cache_capacity: 4096,
            ..EngineConfig::default()
        });
        let ps = pairs(400, 300, 21);
        let expect = e.index().query_batch_sequential(&ps);
        assert_eq!(e.run(&ps), expect, "cold pass parity");
        assert_eq!(e.run(&ps), expect, "warm pass parity");
        let stats = e.cache().expect("cache enabled").stats();
        assert!(
            stats.hits >= ps.len() as u64,
            "second pass must be all hits: {stats:?}"
        );
        // try_run and the timed path go through the same front-end.
        let (answers, report) = e.try_run(&ps).expect("idle queue");
        assert_eq!(answers, expect);
        assert_eq!(report.chunks, 0, "full hit submits nothing to the pool");
        let (answers, _, lat) = e.run_with_latencies(&ps);
        assert_eq!(answers, expect);
        assert_eq!(lat.len(), ps.len(), "timed path covers hits too");
    }

    #[test]
    fn partial_hits_submit_only_missing_pairs() {
        let e = engine(EngineConfig {
            workers: 1,
            chunk_size: 8,
            cache_capacity: 1024,
            ..EngineConfig::default()
        });
        let warm = pairs(64, 300, 33);
        e.run(&warm);
        // Half warm, half cold: the pool only sees the cold half.
        let mut mixed = warm[..32].to_vec();
        mixed.extend(pairs(32, 300, 44));
        let (answers, report) = e.run_with_report(&mixed);
        assert_eq!(answers, e.index().query_batch_sequential(&mixed));
        assert_eq!(report.queries, 64);
        assert!(
            report.chunks <= 32usize.div_ceil(8),
            "only the cold residue is chunked: {report:?}"
        );
    }

    #[test]
    fn traced_run_attributes_stages_and_worker_stats() {
        let e = engine(EngineConfig {
            workers: 2,
            chunk_size: 64,
            sort_by_rank: true,
            ..EngineConfig::default()
        });
        let ps = pairs(300, 300, 77);
        let mut span = Span::new();
        let (answers, report) = e.try_run_traced(&ps, &mut span).expect("idle queue");
        assert_eq!(answers, e.index().query_batch_sequential(&ps));
        let st = span.stage_ns();
        assert!(st[Stage::Prepare as usize] > 0, "prepare attributed");
        assert!(st[Stage::Execute as usize] > 0, "execution attributed");
        assert!(st[Stage::Merge as usize] > 0, "merge attributed");
        assert_eq!(
            st[Stage::CacheProbe as usize],
            0,
            "no cache, no probe stage"
        );
        let stats = e.worker_stats();
        assert_eq!(stats.len(), 2, "one entry per pool worker");
        assert_eq!(
            stats.iter().map(|w| w.chunks).sum::<u64>(),
            report.chunks as u64,
            "every chunk lands in exactly one worker's counter"
        );
        assert!(stats.iter().map(|w| w.busy_ns).sum::<u64>() > 0);
    }

    #[test]
    fn traced_full_cache_hit_probes_without_executing() {
        let e = engine(EngineConfig {
            workers: 2,
            chunk_size: 64,
            cache_capacity: 4096,
            ..EngineConfig::default()
        });
        let ps = pairs(128, 300, 55);
        e.run(&ps); // warm the cache
        let mut span = Span::new();
        let (answers, report) = e.try_run_traced(&ps, &mut span).expect("idle queue");
        assert_eq!(answers, e.index().query_batch_sequential(&ps));
        assert_eq!(report.chunks, 0, "full hit submits nothing");
        let st = span.stage_ns();
        assert!(st[Stage::CacheProbe as usize] > 0, "probe attributed");
        assert_eq!(st[Stage::Execute as usize], 0, "no pool work on a hit");
    }

    #[test]
    fn cache_disabled_by_default() {
        let e = engine(EngineConfig::default());
        assert!(e.cache().is_none());
    }

    #[test]
    fn workload_sketch_records_batches_and_advises() {
        let e = engine(EngineConfig {
            workers: 2,
            cache_capacity: 8192,
            window_secs: 1,
            ..EngineConfig::default()
        });
        // A skewed batch: one dominant pair plus a spread.
        let mut ps = vec![(1u32, 2u32); 300];
        ps.extend(pairs(200, 300, 61));
        e.run(&ps);
        let w = e.workload().expect("workload sketch on by default");
        assert_eq!(w.total_pairs(), 500);
        assert!(w.distinct_pairs() >= 1.0);
        assert!(
            e.workload_quiesce(std::time::Duration::from_secs(5)),
            "sketcher thread did not drain"
        );
        assert_eq!(w.hot_pairs(1)[0].key, (1, 2));
        assert!(w.hot_pair_share() > 0.4);
        let ring = e.timeseries().expect("time series on by default");
        let now = super::unix_now_s();
        let recent = ring.recent(4, now);
        assert!(!recent.is_empty(), "the open window must show traffic");
        assert_eq!(recent.iter().map(|w| w.requests).sum::<u64>(), 1);
        // The advisor ran on the first batch of the first window.
        let advice = e.cache_advice().expect("advice available");
        assert!(advice.recommended >= advisor::MIN_CAPACITY);
        assert_eq!(
            e.recommended_cache_capacity(),
            Some(advisor::MIN_CAPACITY as u64),
            "first verdict ran on a nearly-empty sketch"
        );
    }

    #[test]
    fn workload_sketch_can_be_disabled() {
        let e = engine(EngineConfig {
            workers: 1,
            workload_sketch: false,
            ..EngineConfig::default()
        });
        e.run(&pairs(64, 300, 5));
        assert!(e.workload().is_none());
        assert!(e.timeseries().is_none());
        assert!(e.recommended_cache_capacity().is_none());
        assert!(e.cache_advice().is_none());
    }

    #[test]
    fn adaptive_cache_applies_the_advisors_verdict() {
        // A deliberately oversized cache plus a tiny working set: the
        // advisor must recommend (far) less and, with cache_adaptive on,
        // shrink the live cache when its window turns.
        let e = engine(EngineConfig {
            workers: 2,
            cache_capacity: 100_000,
            cache_adaptive: true,
            window_secs: 1,
            ..EngineConfig::default()
        });
        let ps = pairs(500, 300, 17);
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        // Drive repeat traffic across at least two window turns.
        while Instant::now() < deadline {
            e.run(&ps);
            if e.cache().unwrap().capacity() < 100_000 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let live = e.cache().unwrap().capacity();
        assert!(
            live < 100_000,
            "adaptive engine must shrink an oversized cache (live {live})"
        );
        // Answers stay correct across the resize.
        assert_eq!(e.run(&ps), e.index().query_batch_sequential(&ps));
    }

    #[test]
    fn submit_error_messages() {
        let s = SubmitError::Saturated {
            queued: 9,
            capacity: 10,
        };
        assert!(s.to_string().contains("saturated"));
        let t = SubmitError::TooLarge {
            chunks: 99,
            capacity: 10,
        };
        assert!(t.to_string().contains("exceeds"));
    }
}
