//! Sustained-throughput measurement for the `pspc bench` subcommand and
//! the service scaling experiment in `pspc_bench`.
//!
//! Throughput (queries/sec) is measured with the untimed engine path —
//! per-query clock reads would distort it — while latency percentiles
//! come from a second, individually timed pass over the same workload.

use crate::engine::QueryEngine;
use pspc_graph::VertexId;
use std::fmt;

/// Results of one benchmark run.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall seconds for the untimed throughput pass.
    pub wall_secs: f64,
    /// Sustained throughput of the engine (queries/second).
    pub qps: f64,
    /// Median per-query latency (microseconds).
    pub p50_us: f64,
    /// 99th-percentile per-query latency (microseconds).
    pub p99_us: f64,
    /// Worst per-query latency (microseconds).
    pub max_us: f64,
    /// Queries with a finite distance.
    pub reachable: usize,
    /// Wall seconds of `query_batch_sequential` on the same batch, when a
    /// baseline comparison was requested.
    pub sequential_secs: Option<f64>,
}

impl BenchReport {
    /// Engine speedup over the sequential baseline, if one was measured.
    pub fn speedup(&self) -> Option<f64> {
        self.sequential_secs.map(|s| s / self.wall_secs)
    }
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} queries, {} workers: {:.3}s wall, {:.0} queries/sec",
            self.queries, self.workers, self.wall_secs, self.qps
        )?;
        writeln!(
            f,
            "latency p50 {:.2} us, p99 {:.2} us, max {:.2} us; {} reachable",
            self.p50_us, self.p99_us, self.max_us, self.reachable
        )?;
        if let (Some(seq), Some(speedup)) = (self.sequential_secs, self.speedup()) {
            writeln!(
                f,
                "sequential baseline {seq:.3}s — engine speedup {speedup:.2}x"
            )?;
        }
        Ok(())
    }
}

/// Value at quantile `q` (0..=1) of an unsorted latency sample, in the
/// nearest-rank convention. Returns 0 on an empty sample. Callers that
/// need several quantiles of one sample should sort once and use
/// [`percentile_sorted_nanos`] instead of paying a sort per quantile.
pub fn percentile_nanos(latencies: &mut [u64], q: f64) -> u64 {
    latencies.sort_unstable();
    percentile_sorted_nanos(latencies, q)
}

/// [`percentile_nanos`] over an **already sorted** sample: the cheap path
/// for deriving multiple quantiles from one sort.
pub fn percentile_sorted_nanos(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Approximate quantiles through a [`pspc_obs::LogHistogram`]: records
/// the sample once and reads every requested quantile from cumulative
/// bucket counts — `O(n + q·buckets)` instead of the sort's
/// `O(n log n)`, at the histogram's ~2-significant-digit resolution
/// (each estimate overestimates its exact [`percentile_nanos`]
/// counterpart by less than 1/32). Useful for long-running loops that
/// cannot afford to retain and re-sort every sample; one-shot reports
/// keep using the exact sort-based helpers.
pub fn bucketed_percentiles(latencies: &[u64], qs: &[f64]) -> Vec<u64> {
    let hist = pspc_obs::LogHistogram::new();
    for &v in latencies {
        hist.record(v);
    }
    let snap = hist.snapshot();
    qs.iter().map(|&q| snap.quantile(q)).collect()
}

/// Runs the full benchmark: a warmup pass, an untimed throughput pass, a
/// timed latency pass, and optionally the sequential baseline.
pub fn run_bench(
    engine: &QueryEngine,
    pairs: &[(VertexId, VertexId)],
    compare_sequential: bool,
) -> BenchReport {
    // Warmup: fault in the index and let the OS settle thread placement.
    let warm = &pairs[..pairs.len().min(1000)];
    let _ = engine.run(warm);

    let (answers, report) = engine.run_with_report(pairs);
    let (_, _, mut lat) = engine.run_with_latencies(pairs);
    let p50 = percentile_nanos(&mut lat, 0.50) as f64 / 1e3;
    let p99 = percentile_nanos(&mut lat, 0.99) as f64 / 1e3;
    let max = lat.last().copied().unwrap_or(0) as f64 / 1e3;

    let sequential_secs = compare_sequential.then(|| {
        let t0 = std::time::Instant::now();
        let seq = engine.kind().query_batch_sequential(pairs);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(seq, answers, "engine and sequential answers diverge");
        secs
    });

    BenchReport {
        queries: report.queries,
        workers: report.workers,
        wall_secs: report.wall_secs,
        qps: report.qps(),
        p50_us: p50,
        p99_us: p99,
        max_us: max,
        reachable: report.reachable,
        sequential_secs,
    }
}

/// Deterministic xorshift query workload over `n` vertices (no `rand`
/// dependency for the CLI).
pub fn random_pairs(n: usize, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n > 0, "empty index");
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as VertexId
    };
    (0..count).map(|_| (next(), next())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, QueryEngine};
    use pspc_core::{build_pspc, PspcConfig};
    use pspc_graph::generators::barabasi_albert;

    #[test]
    fn percentiles_nearest_rank() {
        let mut v = vec![50, 10, 20, 30, 40];
        assert_eq!(percentile_nanos(&mut v, 0.50), 30);
        assert_eq!(percentile_nanos(&mut v, 0.99), 50);
        assert_eq!(percentile_nanos(&mut v, 0.0), 10);
        assert_eq!(percentile_nanos(&mut [], 0.5), 0);
        // The sorted-input path agrees with the sorting path.
        let sorted = [10, 20, 30, 40, 50];
        for q in [0.0, 0.25, 0.50, 0.99, 1.0] {
            assert_eq!(
                percentile_sorted_nanos(&sorted, q),
                percentile_nanos(&mut sorted.to_vec(), q)
            );
        }
        assert_eq!(percentile_sorted_nanos(&[], 0.5), 0);
    }

    #[test]
    fn bucketed_percentiles_track_exact_within_resolution() {
        let lat: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        let qs = [0.0, 0.25, 0.50, 0.90, 0.99, 1.0];
        let approx = bucketed_percentiles(&lat, &qs);
        let mut sorted = lat.clone();
        sorted.sort_unstable();
        for (&q, &est) in qs.iter().zip(&approx) {
            let exact = percentile_sorted_nanos(&sorted, q);
            assert!(est >= exact, "bucket bound must not undershoot");
            assert!(
                est as f64 <= exact as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                "q={q}: {est} vs exact {exact} exceeds the error bound"
            );
        }
        assert!(bucketed_percentiles(&[], &qs).iter().all(|&v| v == 0));
    }

    #[test]
    fn bench_report_is_consistent() {
        let g = barabasi_albert(200, 3, 21);
        let (index, _) = build_pspc(&g, &PspcConfig::default());
        let engine = QueryEngine::with_config(
            index,
            EngineConfig {
                workers: 2,
                chunk_size: 256,
                sort_by_rank: true,
                ..EngineConfig::default()
            },
        );
        let pairs = random_pairs(200, 5000, 42);
        let r = run_bench(&engine, &pairs, true);
        assert_eq!(r.queries, 5000);
        assert!(r.qps > 0.0);
        assert!(r.p50_us <= r.p99_us && r.p99_us <= r.max_us);
        assert!(r.sequential_secs.is_some());
        assert!(r.speedup().unwrap() > 0.0);
        let text = r.to_string();
        assert!(text.contains("queries/sec"));
        assert!(text.contains("speedup"));
    }
}
