//! Query-pair I/O for the CLI and the HTTP front-end: SNAP-style text
//! in, tab-separated or JSON answers out.
//!
//! The pair format mirrors the edge-list reader in `pspc_graph::io`: one
//! `s t` pair per line, `#`/`%` comments, blank lines skipped, extra
//! columns ignored. Answers are written as `s\tt\tdist\tcount`, with
//! `unreachable` in the distance column (and 0 paths) for disconnected
//! pairs — or, for structured clients, as a JSON array of
//! `{"s":..,"t":..,"dist":..,"count":..}` objects
//! ([`write_answers_json`]) where an unreachable pair carries
//! `"dist":null`. [`parse_answers_json`] round-trips that exact shape
//! (counts are parsed as full-precision `u64`, so even saturated
//! `u64::MAX` counts survive; JavaScript consumers should treat `count`
//! as a big integer).

use pspc_graph::{SpcAnswer, VertexId};
use std::io::{self, BufRead, Write};

/// Parses query pairs from a reader.
pub fn read_pairs<R: BufRead>(mut reader: R) -> io::Result<Vec<(VertexId, VertexId)>> {
    let mut pairs = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let s = parse_vertex(it.next(), lineno)?;
        let t = parse_vertex(it.next(), lineno)?;
        pairs.push((s, t));
    }
    Ok(pairs)
}

fn parse_vertex(tok: Option<&str>, lineno: usize) -> io::Result<VertexId> {
    tok.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {lineno}: expected two vertex ids"),
        )
    })?
    .parse::<VertexId>()
    .map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {lineno}: bad vertex id: {e}"),
        )
    })
}

/// Writes one answer line per query: `s\tt\tdist\tcount`.
pub fn write_answers<W: Write>(
    pairs: &[(VertexId, VertexId)],
    answers: &[SpcAnswer],
    mut w: W,
) -> io::Result<()> {
    debug_assert_eq!(pairs.len(), answers.len());
    for (&(s, t), a) in pairs.iter().zip(answers) {
        if a.is_reachable() {
            writeln!(w, "{s}\t{t}\t{}\t{}", a.dist, a.count)?;
        } else {
            writeln!(w, "{s}\t{t}\tunreachable\t0")?;
        }
    }
    w.flush()
}

/// Writes the batch as a JSON array, one object per query:
/// `{"s":0,"t":3,"dist":2,"count":4}`; unreachable pairs carry
/// `"dist":null` and `"count":0`.
pub fn write_answers_json<W: Write>(
    pairs: &[(VertexId, VertexId)],
    answers: &[SpcAnswer],
    mut w: W,
) -> io::Result<()> {
    debug_assert_eq!(pairs.len(), answers.len());
    writeln!(w, "[")?;
    for (i, (&(s, t), a)) in pairs.iter().zip(answers).enumerate() {
        let sep = if i + 1 == pairs.len() { "" } else { "," };
        if a.is_reachable() {
            writeln!(
                w,
                "{{\"s\":{s},\"t\":{t},\"dist\":{},\"count\":{}}}{sep}",
                a.dist, a.count
            )?;
        } else {
            writeln!(w, "{{\"s\":{s},\"t\":{t},\"dist\":null,\"count\":0}}{sep}")?;
        }
    }
    writeln!(w, "]")?;
    w.flush()
}

/// One parsed JSON answer row: the queried `(s, t)` pair and its answer.
pub type AnswerRow = ((VertexId, VertexId), SpcAnswer);

/// Parses the exact JSON shape [`write_answers_json`] emits back into
/// `((s, t), answer)` rows. Intentionally minimal — it understands this
/// workspace's answer arrays, not arbitrary JSON.
pub fn parse_answers_json(text: &str) -> Result<Vec<AnswerRow>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or("expected a JSON array")?;
    let mut rows = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}').ok_or("unterminated object")? + open;
        rows.push(parse_answer_object(&rest[open + 1..close])?);
        rest = &rest[close + 1..];
    }
    Ok(rows)
}

fn parse_answer_object(fields: &str) -> Result<AnswerRow, String> {
    let (mut s, mut t, mut count) = (None, None, None);
    let mut dist: Option<Option<u16>> = None;
    for field in fields.split(',') {
        let (k, v) = field
            .split_once(':')
            .ok_or_else(|| format!("bad field {field:?}"))?;
        let (k, v) = (k.trim().trim_matches('"'), v.trim());
        let bad = |e| format!("bad {k} value {v:?}: {e}");
        match k {
            "s" => s = Some(v.parse::<VertexId>().map_err(bad)?),
            "t" => t = Some(v.parse::<VertexId>().map_err(bad)?),
            "dist" => {
                dist = Some(if v == "null" {
                    None
                } else {
                    Some(v.parse::<u16>().map_err(bad)?)
                })
            }
            "count" => count = Some(v.parse::<u64>().map_err(bad)?),
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    let (s, t) = (s.ok_or("missing s")?, t.ok_or("missing t")?);
    let count = count.ok_or("missing count")?;
    let answer = match dist.ok_or("missing dist")? {
        Some(d) => SpcAnswer { dist: d, count },
        None => SpcAnswer::UNREACHABLE,
    };
    Ok(((s, t), answer))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs_with_comments() {
        let text = "# query workload\n0 1\n% other\n\n2 3 extra columns\n4\t5\n";
        let pairs = read_pairs(text.as_bytes()).unwrap();
        assert_eq!(pairs, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_pairs("0 x\n".as_bytes()).is_err());
        assert!(read_pairs("7\n".as_bytes()).is_err());
    }

    #[test]
    fn writes_answers_including_unreachable() {
        let pairs = vec![(0, 1), (2, 3)];
        let answers = vec![SpcAnswer { dist: 2, count: 4 }, SpcAnswer::UNREACHABLE];
        let mut out = Vec::new();
        write_answers(&pairs, &answers, &mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "0\t1\t2\t4\n2\t3\tunreachable\t0\n"
        );
    }

    #[test]
    fn json_round_trips_including_saturated_and_unreachable() {
        let pairs = vec![(0, 1), (2, 3), (7, 7)];
        let answers = vec![
            SpcAnswer { dist: 2, count: 4 },
            SpcAnswer::UNREACHABLE,
            SpcAnswer {
                dist: 0,
                count: u64::MAX, // the documented saturation sentinel
            },
        ];
        let mut out = Vec::new();
        write_answers_json(&pairs, &answers, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"dist\":null"));
        let rows = parse_answers_json(&text).unwrap();
        assert_eq!(rows.len(), 3);
        for (((s, t), a), (&(es, et), ea)) in rows.iter().zip(pairs.iter().zip(&answers)) {
            assert_eq!((s, t), (&es, &et));
            assert_eq!(a, ea);
        }
    }

    #[test]
    fn json_empty_batch_is_an_empty_array() {
        let mut out = Vec::new();
        write_answers_json(&[], &[], &mut out).unwrap();
        let rows = parse_answers_json(&String::from_utf8(out).unwrap()).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_answers_json("not json").is_err());
        assert!(parse_answers_json("[{\"s\":1}]").is_err());
        assert!(parse_answers_json("[{\"s\":1,\"t\":2,\"dist\":x,\"count\":0}]").is_err());
        assert!(parse_answers_json("[{\"q\":1}]").is_err());
    }
}
