//! Query-pair I/O for the CLI: SNAP-style text in, tab-separated answers
//! out.
//!
//! The pair format mirrors the edge-list reader in `pspc_graph::io`: one
//! `s t` pair per line, `#`/`%` comments, blank lines skipped, extra
//! columns ignored. Answers are written as `s\tt\tdist\tcount`, with
//! `unreachable` in the distance column (and 0 paths) for disconnected
//! pairs.

use pspc_graph::{SpcAnswer, VertexId};
use std::io::{self, BufRead, Write};

/// Parses query pairs from a reader.
pub fn read_pairs<R: BufRead>(mut reader: R) -> io::Result<Vec<(VertexId, VertexId)>> {
    let mut pairs = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let s = parse_vertex(it.next(), lineno)?;
        let t = parse_vertex(it.next(), lineno)?;
        pairs.push((s, t));
    }
    Ok(pairs)
}

fn parse_vertex(tok: Option<&str>, lineno: usize) -> io::Result<VertexId> {
    tok.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {lineno}: expected two vertex ids"),
        )
    })?
    .parse::<VertexId>()
    .map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {lineno}: bad vertex id: {e}"),
        )
    })
}

/// Writes one answer line per query: `s\tt\tdist\tcount`.
pub fn write_answers<W: Write>(
    pairs: &[(VertexId, VertexId)],
    answers: &[SpcAnswer],
    mut w: W,
) -> io::Result<()> {
    debug_assert_eq!(pairs.len(), answers.len());
    for (&(s, t), a) in pairs.iter().zip(answers) {
        if a.is_reachable() {
            writeln!(w, "{s}\t{t}\t{}\t{}", a.dist, a.count)?;
        } else {
            writeln!(w, "{s}\t{t}\tunreachable\t0")?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs_with_comments() {
        let text = "# query workload\n0 1\n% other\n\n2 3 extra columns\n4\t5\n";
        let pairs = read_pairs(text.as_bytes()).unwrap();
        assert_eq!(pairs, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_pairs("0 x\n".as_bytes()).is_err());
        assert!(read_pairs("7\n".as_bytes()).is_err());
    }

    #[test]
    fn writes_answers_including_unreachable() {
        let pairs = vec![(0, 1), (2, 3)];
        let answers = vec![SpcAnswer { dist: 2, count: 4 }, SpcAnswer::UNREACHABLE];
        let mut out = Vec::new();
        write_answers(&pairs, &answers, &mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "0\t1\t2\t4\n2\t3\tunreachable\t0\n"
        );
    }
}
