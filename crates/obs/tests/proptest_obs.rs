//! Property-based coverage of [`pspc_obs`]: the histogram's
//! relative-error bound over arbitrary values, merge ≡ recording the
//! union, quantile monotonicity in `q`, trace-ring eviction order,
//! slow-log top-K invariants under arbitrary offer sequences, and the
//! sketch guarantees — HyperLogLog relative error ≤ 2% vs the exact
//! distinct count on streams up to 1M pairs, and SpaceSaving's
//! `error ≤ N/k` count bound under adversarial skew.

use std::collections::HashSet;

use proptest::collection::vec;
use proptest::prelude::*;
use pspc_obs::{
    bucket_bounds, bucket_index, HyperLogLog, LogHistogram, RequestTrace, SlowLog, SpaceSaving,
    Stage, TraceRing,
};

/// Strategy: values spanning every octave, not just the small ones a
/// uniform `u64` range would hit with vanishing probability.
fn arb_value() -> impl Strategy<Value = u64> {
    (0u32..64, 0u64..u64::MAX).prop_map(|(shift, raw)| raw >> shift)
}

fn trace(id: u64, total_ns: u64) -> RequestTrace {
    RequestTrace {
        id,
        kind: "query",
        status: "ok",
        items: 1,
        total_ns,
        stage_ns: [0; Stage::COUNT],
        unix_ms: 0,
    }
}

proptest! {
    /// Every value lands in a bucket containing it, with the bucket
    /// overestimating by less than the documented 1/32 relative error.
    #[test]
    fn value_lands_in_bucket_within_error_bound(v in arb_value()) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi, "v={v} outside [{lo}, {hi}]");
        if v > 0 {
            let err = (hi - v) as f64 / v as f64;
            prop_assert!(err < 1.0 / 32.0, "v={v}: relative error {err}");
        } else {
            prop_assert_eq!(hi, 0);
        }
    }

    /// Merging histograms is indistinguishable from recording the
    /// concatenated sample stream.
    #[test]
    fn merge_equals_recording_the_union(
        xs in vec(arb_value(), 0..200),
        ys in vec(arb_value(), 0..200),
    ) {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let union = LogHistogram::new();
        for &v in &xs {
            a.record(v);
            union.record(v);
        }
        for &v in &ys {
            b.record(v);
            union.record(v);
        }
        a.merge_from(&b);
        let (sa, su) = (a.snapshot(), union.snapshot());
        prop_assert_eq!(sa.count(), su.count());
        prop_assert_eq!(sa.sum(), su.sum());
        let (ca, cu): (Vec<_>, Vec<_>) =
            (sa.cumulative_nonzero().collect(), su.cumulative_nonzero().collect());
        prop_assert_eq!(ca, cu, "identical bucket series");
    }

    /// Quantiles are monotone non-decreasing in `q`, bounded by the
    /// sample extremes' buckets, and exact-rank consistent with a
    /// sorted copy of the samples (each quantile's bucket contains the
    /// nearest-rank sample).
    #[test]
    fn quantiles_monotone_and_rank_consistent(mut xs in vec(arb_value(), 1..300)) {
        let h = LogHistogram::new();
        for &v in &xs {
            h.record(v);
        }
        let s = h.snapshot();
        xs.sort_unstable();
        let mut prev = 0u64;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let est = s.quantile(q);
            prop_assert!(est >= prev, "quantile must be monotone in q");
            prev = est;
            // Nearest-rank ground truth: the estimate's bucket must
            // contain the exact sample of that rank.
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let exact = xs[rank - 1];
            let (_, hi) = bucket_bounds(bucket_index(exact));
            prop_assert_eq!(
                est, hi,
                "q={}: the estimate must be the exact rank-{} sample {}'s bucket bound",
                q, rank, exact
            );
        }
    }

    /// The trace ring holds exactly the last `capacity` pushes, newest
    /// first.
    #[test]
    fn ring_keeps_last_k_newest_first(
        n in 0usize..40,
        capacity in 1usize..10,
        take in 0usize..15,
    ) {
        let ring = TraceRing::new(capacity);
        for id in 0..n as u64 {
            ring.push(trace(id, id));
        }
        let got: Vec<u64> = ring.recent(take).iter().map(|t| t.id).collect();
        let expect: Vec<u64> = (0..n as u64).rev().take(take.min(capacity)).collect();
        prop_assert_eq!(got, expect);
    }

    /// The slow log holds exactly the K slowest offers, slowest first,
    /// regardless of offer order.
    #[test]
    fn slow_log_is_top_k(latencies in vec(0u64..1000, 0..60), k in 1usize..8) {
        let log = SlowLog::new(k);
        for (id, &ns) in latencies.iter().enumerate() {
            log.offer(trace(id as u64, ns));
        }
        let got: Vec<u64> = log.slowest(k).iter().map(|t| t.total_ns).collect();
        let mut expect = latencies.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(k);
        prop_assert_eq!(got, expect);
        // Stage breakdowns survive: every kept trace renders all stages.
        for t in log.slowest(k) {
            let json = t.to_json();
            for stage in Stage::ALL {
                prop_assert!(json.contains(&format!("\"{}\":", stage.name())));
            }
        }
    }
}

/// Deterministic xorshift64* stream generator for the sketch properties.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

proptest! {
    // Streams run to 1M pairs; a handful of (deterministically seeded)
    // cases keeps the debug-profile test suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// HyperLogLog estimates stay within 2% of the exact distinct count
    /// on random streams up to 1M pairs, across sparse and dense
    /// representations and arbitrary duplication rates.
    #[test]
    fn hll_within_two_percent_of_exact(
        seed in 1u64..u64::MAX,
        len_exp in 10u32..20,
        universe_exp in 6u32..22,
    ) {
        let len = 1usize << len_exp; // up to 1M (2^19 ≈ 524k, plus the 1M unit pin below)
        let universe = 1u64 << universe_exp;
        let mut state = seed | 1;
        let mut hll = HyperLogLog::new();
        let mut exact = HashSet::new();
        for _ in 0..len {
            let pair = xorshift(&mut state) % universe;
            hll.insert(pair);
            exact.insert(pair);
        }
        let err = (hll.estimate() - exact.len() as f64).abs() / exact.len() as f64;
        prop_assert!(
            err <= 0.02,
            "distinct={} estimate={:.1} rel_err={:.4}",
            exact.len(),
            hll.estimate(),
            err
        );
    }
}

/// The satellite's upper end, pinned exactly: a 1M-pair stream (drawn
/// from a ~2M universe so the exact distinct count is non-trivial) stays
/// within 2% relative error.
#[test]
fn hll_one_million_pair_stream_within_two_percent() {
    let mut state = 0x00C0_FFEE_u64;
    let mut hll = HyperLogLog::new();
    let mut exact = HashSet::new();
    for _ in 0..1_000_000u32 {
        let pair = xorshift(&mut state) % (1 << 21);
        hll.insert(pair);
        exact.insert(pair);
    }
    let err = (hll.estimate() - exact.len() as f64).abs() / exact.len() as f64;
    assert!(
        err <= 0.02,
        "distinct={} estimate={:.1} rel_err={:.4}",
        exact.len(),
        hll.estimate(),
        err
    );
}

proptest! {
    /// SpaceSaving under adversarial skew: a few heavy keys buried in a
    /// stream of never-repeating keys (the worst case for counter
    /// eviction). Every reported count is an upper bound on the true
    /// frequency with error ≤ N/k, and every key whose true frequency
    /// exceeds N/k is monitored.
    #[test]
    fn spacesaving_error_bounded_by_n_over_k(
        seed in 1u64..u64::MAX,
        k in 2usize..48,
        heavies in 1u64..6,
        len in 1_000usize..20_000,
    ) {
        let mut state = seed | 1;
        let mut ss = SpaceSaving::new(k);
        let mut exact: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut fresh = 1_000_000u64; // unique-key counter, disjoint from heavy ids
        for _ in 0..len {
            let r = xorshift(&mut state);
            // Half the stream hammers the heavy keys, half is an
            // adversarial churn of keys never seen again.
            let key = if r.is_multiple_of(2) {
                r % heavies
            } else {
                fresh += 1;
                fresh
            };
            ss.offer(key);
            *exact.entry(key).or_default() += 1;
        }
        let n = ss.total();
        prop_assert_eq!(n, len as u64);
        let bound = n / k as u64;
        let monitored: HashSet<u64> = ss.entries().iter().map(|h| h.key).collect();
        for h in ss.entries() {
            let truth = exact[&h.key];
            prop_assert!(h.error <= bound, "error {} > N/k = {}", h.error, bound);
            prop_assert!(h.count >= truth, "count {} undercounts true {}", h.count, truth);
            prop_assert!(
                h.guaranteed() <= truth,
                "guaranteed {} overcounts true {}",
                h.guaranteed(),
                truth
            );
        }
        for (&key, &truth) in &exact {
            if truth > bound {
                prop_assert!(
                    monitored.contains(&key),
                    "key {} with true frequency {} > N/k = {} must be monitored",
                    key,
                    truth,
                    bound
                );
            }
        }
    }
}
