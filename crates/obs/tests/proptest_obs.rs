//! Property-based coverage of [`pspc_obs`]: the histogram's
//! relative-error bound over arbitrary values, merge ≡ recording the
//! union, quantile monotonicity in `q`, trace-ring eviction order and
//! slow-log top-K invariants under arbitrary offer sequences.

use proptest::collection::vec;
use proptest::prelude::*;
use pspc_obs::{
    bucket_bounds, bucket_index, LogHistogram, RequestTrace, SlowLog, Stage, TraceRing,
};

/// Strategy: values spanning every octave, not just the small ones a
/// uniform `u64` range would hit with vanishing probability.
fn arb_value() -> impl Strategy<Value = u64> {
    (0u32..64, 0u64..u64::MAX).prop_map(|(shift, raw)| raw >> shift)
}

fn trace(id: u64, total_ns: u64) -> RequestTrace {
    RequestTrace {
        id,
        kind: "query",
        status: "ok",
        items: 1,
        total_ns,
        stage_ns: [0; Stage::COUNT],
        unix_ms: 0,
    }
}

proptest! {
    /// Every value lands in a bucket containing it, with the bucket
    /// overestimating by less than the documented 1/32 relative error.
    #[test]
    fn value_lands_in_bucket_within_error_bound(v in arb_value()) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi, "v={v} outside [{lo}, {hi}]");
        if v > 0 {
            let err = (hi - v) as f64 / v as f64;
            prop_assert!(err < 1.0 / 32.0, "v={v}: relative error {err}");
        } else {
            prop_assert_eq!(hi, 0);
        }
    }

    /// Merging histograms is indistinguishable from recording the
    /// concatenated sample stream.
    #[test]
    fn merge_equals_recording_the_union(
        xs in vec(arb_value(), 0..200),
        ys in vec(arb_value(), 0..200),
    ) {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let union = LogHistogram::new();
        for &v in &xs {
            a.record(v);
            union.record(v);
        }
        for &v in &ys {
            b.record(v);
            union.record(v);
        }
        a.merge_from(&b);
        let (sa, su) = (a.snapshot(), union.snapshot());
        prop_assert_eq!(sa.count(), su.count());
        prop_assert_eq!(sa.sum(), su.sum());
        let (ca, cu): (Vec<_>, Vec<_>) =
            (sa.cumulative_nonzero().collect(), su.cumulative_nonzero().collect());
        prop_assert_eq!(ca, cu, "identical bucket series");
    }

    /// Quantiles are monotone non-decreasing in `q`, bounded by the
    /// sample extremes' buckets, and exact-rank consistent with a
    /// sorted copy of the samples (each quantile's bucket contains the
    /// nearest-rank sample).
    #[test]
    fn quantiles_monotone_and_rank_consistent(mut xs in vec(arb_value(), 1..300)) {
        let h = LogHistogram::new();
        for &v in &xs {
            h.record(v);
        }
        let s = h.snapshot();
        xs.sort_unstable();
        let mut prev = 0u64;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let est = s.quantile(q);
            prop_assert!(est >= prev, "quantile must be monotone in q");
            prev = est;
            // Nearest-rank ground truth: the estimate's bucket must
            // contain the exact sample of that rank.
            let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
            let exact = xs[rank - 1];
            let (_, hi) = bucket_bounds(bucket_index(exact));
            prop_assert_eq!(
                est, hi,
                "q={}: the estimate must be the exact rank-{} sample {}'s bucket bound",
                q, rank, exact
            );
        }
    }

    /// The trace ring holds exactly the last `capacity` pushes, newest
    /// first.
    #[test]
    fn ring_keeps_last_k_newest_first(
        n in 0usize..40,
        capacity in 1usize..10,
        take in 0usize..15,
    ) {
        let ring = TraceRing::new(capacity);
        for id in 0..n as u64 {
            ring.push(trace(id, id));
        }
        let got: Vec<u64> = ring.recent(take).iter().map(|t| t.id).collect();
        let expect: Vec<u64> = (0..n as u64).rev().take(take.min(capacity)).collect();
        prop_assert_eq!(got, expect);
    }

    /// The slow log holds exactly the K slowest offers, slowest first,
    /// regardless of offer order.
    #[test]
    fn slow_log_is_top_k(latencies in vec(0u64..1000, 0..60), k in 1usize..8) {
        let log = SlowLog::new(k);
        for (id, &ns) in latencies.iter().enumerate() {
            log.offer(trace(id as u64, ns));
        }
        let got: Vec<u64> = log.slowest(k).iter().map(|t| t.total_ns).collect();
        let mut expect = latencies.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(k);
        prop_assert_eq!(got, expect);
        // Stage breakdowns survive: every kept trace renders all stages.
        for t in log.slowest(k) {
            let json = t.to_json();
            for stage in Stage::ALL {
                prop_assert!(json.contains(&format!("\"{}\":", stage.name())));
            }
        }
    }
}
