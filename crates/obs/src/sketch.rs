//! Streaming workload sketches: summarize millions of requests in
//! kilobytes, with provable error bounds and wait-free recording.
//!
//! # Pieces
//!
//! * [`HyperLogLog`] — a HyperLogLog++ distinct-count estimator at
//!   [`HLL_PRECISION`] = 14 bits (16384 registers, ~1% standard error).
//!   Starts **sparse** (a small index→rank map) and promotes itself to
//!   the dense 16 KiB register array once the map would outgrow it;
//!   sparse estimates use exact linear counting, so small cardinalities
//!   are near-exact. Mergeable: `merge` is register-wise `max` and
//!   equals having observed the union of both streams.
//! * [`AtomicHyperLogLog`] — the dense, shared-writer variant: `observe`
//!   is a `Relaxed` load of one `AtomicU8` plus a rarely-taken
//!   `fetch_max`, so any number of request threads record concurrently
//!   without locks.
//! * [`SpaceSaving`] — the Metwally et al. top-K heavy-hitter sketch
//!   over an arbitrary `Copy` key. Capacity `k` guarantees, for every
//!   reported [`HeavyHitter`]: `count - error ≤ true ≤ count` and
//!   `error ≤ N/k` where `N` is the stream length — any key whose true
//!   frequency exceeds `N/k` is guaranteed to be present.
//! * [`TimeSeriesRing`] — a bounded ring of per-window
//!   ([`WindowStats`]) serving rates: qps, cache hit rate and windowed
//!   p50/p99 derived from [`LogHistogram`] snapshot *deltas* between
//!   window boundaries. Recording is wait-free (`Relaxed` adds plus one
//!   histogram record); window rolls happen at most once per window
//!   behind a `try_lock`, so no recorder ever blocks on one.
//! * [`WorkloadSketch`] — the aggregate the query engine feeds:
//!   distinct-(s,t)-pair HLL, hot-pair and hot-source SpaceSaving
//!   sketches and a total-pair counter, behind one `record_batch` call.
//!
//! All of it is dependency-free (std + the in-tree `parking_lot` shim)
//! and fixed-size: a full [`WorkloadSketch`] is ~20 KiB regardless of
//! how many requests it has seen.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

use crate::hist::{HistogramSnapshot, LogHistogram};

/// HyperLogLog precision: registers are indexed by the hash's top
/// `HLL_PRECISION` bits.
pub const HLL_PRECISION: u32 = 14;

/// Number of HLL registers (`2^HLL_PRECISION`). Standard error is
/// `1.04 / sqrt(m)` ≈ 0.81%.
pub const HLL_REGISTERS: usize = 1 << HLL_PRECISION;

/// Sparse→dense promotion threshold: once the sparse map holds this many
/// registers its memory footprint rivals the dense array, so we switch.
const SPARSE_LIMIT: usize = HLL_REGISTERS / 8;

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer, the same shape
/// the service's cache uses to shard pairs. Distinct inputs get
/// independent, uniformly distributed outputs — exactly what both
/// sketches need from a hash.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The canonical 64-bit fingerprint of an `(s, t)` query pair.
#[inline]
pub fn pair_fingerprint(s: u32, t: u32) -> u64 {
    mix64(((s as u64) << 32) | t as u64)
}

/// Register index (top [`HLL_PRECISION`] bits) and rank (leading-zero
/// run of the remaining bits, plus one) of a 64-bit hash.
#[inline]
fn split_hash(h: u64) -> (usize, u8) {
    let idx = (h >> (64 - HLL_PRECISION)) as usize;
    let rest = h << HLL_PRECISION;
    // All-zero remainder caps the rank at 64 - p + 1.
    let rank = rest.leading_zeros().min(64 - HLL_PRECISION) as u8 + 1;
    (idx, rank)
}

/// Bias-corrected estimate from `(sum of 2^-register, zero registers)`.
fn hll_estimate(sum: f64, zeros: usize) -> f64 {
    let m = HLL_REGISTERS as f64;
    let alpha = 0.7213 / (1.0 + 1.079 / m);
    let raw = alpha * m * m / sum;
    // HyperLogLog++ small-range correction: with empty registers and a
    // raw estimate under 2.5·m, exact linear counting is strictly more
    // accurate than the raw harmonic-mean estimator.
    if zeros > 0 && raw <= 2.5 * m {
        m * (m / zeros as f64).ln()
    } else {
        raw
    }
}

enum HllRepr {
    /// register index → max rank, while few registers are touched.
    Sparse(HashMap<u16, u8>),
    /// The full register array (16 KiB).
    Dense(Box<[u8]>),
}

/// A single-writer HyperLogLog++ distinct-count sketch.
///
/// Feed it 64-bit fingerprints ([`HyperLogLog::insert_hash`]) or raw
/// items ([`HyperLogLog::insert`], which applies [`mix64`]);
/// [`HyperLogLog::estimate`] answers "how many *distinct* values have I
/// seen" within ~1–2% at any scale, in constant memory.
pub struct HyperLogLog {
    repr: HllRepr,
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::new()
    }
}

impl HyperLogLog {
    /// An empty sketch in sparse representation (a few hundred bytes
    /// until ~2048 registers are touched).
    pub fn new() -> Self {
        HyperLogLog {
            repr: HllRepr::Sparse(HashMap::new()),
        }
    }

    /// Whether the sketch is still in sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, HllRepr::Sparse(_))
    }

    /// Observes one raw item (hashed through [`mix64`]).
    #[inline]
    pub fn insert(&mut self, item: u64) {
        self.insert_hash(mix64(item));
    }

    /// Observes one pre-hashed 64-bit fingerprint.
    pub fn insert_hash(&mut self, h: u64) {
        let (idx, rank) = split_hash(h);
        match &mut self.repr {
            HllRepr::Sparse(map) => {
                let slot = map.entry(idx as u16).or_insert(0);
                *slot = (*slot).max(rank);
                if map.len() >= SPARSE_LIMIT {
                    self.promote();
                }
            }
            HllRepr::Dense(regs) => {
                if regs[idx] < rank {
                    regs[idx] = rank;
                }
            }
        }
    }

    fn promote(&mut self) {
        if let HllRepr::Sparse(map) = &self.repr {
            let mut regs = vec![0u8; HLL_REGISTERS].into_boxed_slice();
            for (&idx, &rank) in map {
                regs[idx as usize] = rank;
            }
            self.repr = HllRepr::Dense(regs);
        }
    }

    /// Folds `other` into `self` (register-wise max): afterwards `self`
    /// estimates the union of both observed streams.
    pub fn merge(&mut self, other: &HyperLogLog) {
        match &other.repr {
            HllRepr::Sparse(map) => {
                for (&idx, &rank) in map {
                    self.merge_register(idx as usize, rank);
                }
            }
            HllRepr::Dense(regs) => {
                self.promote();
                if let HllRepr::Dense(mine) = &mut self.repr {
                    for (m, &o) in mine.iter_mut().zip(regs.iter()) {
                        if *m < o {
                            *m = o;
                        }
                    }
                }
            }
        }
    }

    fn merge_register(&mut self, idx: usize, rank: u8) {
        match &mut self.repr {
            HllRepr::Sparse(map) => {
                let slot = map.entry(idx as u16).or_insert(0);
                *slot = (*slot).max(rank);
                if map.len() >= SPARSE_LIMIT {
                    self.promote();
                }
            }
            HllRepr::Dense(regs) => {
                if regs[idx] < rank {
                    regs[idx] = rank;
                }
            }
        }
    }

    /// The estimated number of distinct values observed.
    pub fn estimate(&self) -> f64 {
        let (sum, zeros) = match &self.repr {
            HllRepr::Sparse(map) => {
                let zeros = HLL_REGISTERS - map.len();
                let sum = zeros as f64
                    + map
                        .values()
                        .map(|&r| 1.0 / (1u64 << r.min(63)) as f64)
                        .sum::<f64>();
                (sum, zeros)
            }
            HllRepr::Dense(regs) => {
                let mut sum = 0.0;
                let mut zeros = 0usize;
                for &r in regs.iter() {
                    sum += 1.0 / (1u64 << r.min(63)) as f64;
                    zeros += (r == 0) as usize;
                }
                (sum, zeros)
            }
        };
        hll_estimate(sum, zeros)
    }
}

impl std::fmt::Debug for HyperLogLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyperLogLog")
            .field("sparse", &self.is_sparse())
            .field("estimate", &self.estimate())
            .finish()
    }
}

/// The shared-writer HyperLogLog: dense registers as `AtomicU8`, so
/// [`AtomicHyperLogLog::observe`] is one `Relaxed` load (plus a
/// `fetch_max` on the rare register-raising observation) — any number
/// of request threads record concurrently, wait-free.
pub struct AtomicHyperLogLog {
    registers: Box<[AtomicU8]>,
}

impl Default for AtomicHyperLogLog {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHyperLogLog {
    /// An empty sketch (16 KiB, allocated once).
    pub fn new() -> Self {
        AtomicHyperLogLog {
            registers: (0..HLL_REGISTERS).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Observes one pre-hashed fingerprint. Wait-free. The fast path is
    /// a plain relaxed load: a register only grows log-many times over
    /// a sketch's lifetime, so once warm nearly every observation reads
    /// `rank <= current` and skips the (lock-prefixed) `fetch_max`
    /// entirely — the double check keeps the estimate exact under races.
    #[inline]
    pub fn observe(&self, h: u64) {
        let (idx, rank) = split_hash(h);
        let reg = &self.registers[idx];
        if rank > reg.load(Ordering::Relaxed) {
            reg.fetch_max(rank, Ordering::Relaxed);
        }
    }

    /// The estimated number of distinct fingerprints observed (atomic
    /// loads only — never blocks recorders).
    pub fn estimate(&self) -> f64 {
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for r in self.registers.iter() {
            let r = r.load(Ordering::Relaxed);
            sum += 1.0 / (1u64 << r.min(63)) as f64;
            zeros += (r == 0) as usize;
        }
        hll_estimate(sum, zeros)
    }

    /// An owned single-writer copy (e.g. to [`HyperLogLog::merge`]
    /// across engines).
    pub fn to_sketch(&self) -> HyperLogLog {
        let regs: Box<[u8]> = self
            .registers
            .iter()
            .map(|r| r.load(Ordering::Relaxed))
            .collect();
        HyperLogLog {
            repr: HllRepr::Dense(regs),
        }
    }
}

/// One entry reported by [`SpaceSaving`]: `count` overestimates the
/// key's true frequency by at most `error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeavyHitter<K> {
    /// The monitored key.
    pub key: K,
    /// Upper bound on the key's true frequency.
    pub count: u64,
    /// Maximum overestimate inherited from the counter this key evicted
    /// (`0` for keys monitored since their first occurrence).
    pub error: u64,
}

impl<K> HeavyHitter<K> {
    /// Guaranteed lower bound on the key's true frequency.
    pub fn guaranteed(&self) -> u64 {
        self.count - self.error
    }
}

/// The SpaceSaving top-K heavy-hitter sketch (Metwally, Agrawal,
/// El Abbadi 2005) over `k` monitored counters.
///
/// Updates are `O(1)` for already-monitored keys (the common case under
/// skew) and `O(k)` when an unmonitored key evicts the minimum counter.
/// For a stream of length `N`: every reported `count` satisfies
/// `true ≤ count ≤ true + N/k`, and any key with true frequency
/// `> N/k` is guaranteed to be monitored.
pub struct SpaceSaving<K> {
    capacity: usize,
    total: u64,
    slots: Vec<HeavyHitter<K>>,
    index: HashMap<K, usize, MixBuild>,
}

/// [`mix64`]-folding [`std::hash::Hasher`] for the sketch's small
/// `Copy` keys. SipHash (the `HashMap` default) costs more than the
/// rest of a SpaceSaving update combined on u32 / u32-pair keys — a
/// miss on a full sketch hits the index three times (lookup, evictee
/// removal, insertion) — and these keys need no DoS resistance: the
/// sketch is advisory and bounded at `k` entries regardless of input.
#[derive(Clone, Copy, Default)]
pub struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = mix64(self.0 ^ u64::from_le_bytes(buf));
        }
    }
    fn write_u32(&mut self, i: u32) {
        self.0 = mix64(self.0 ^ u64::from(i));
    }
    fn write_u64(&mut self, i: u64) {
        self.0 = mix64(self.0 ^ i);
    }
    fn write_usize(&mut self, i: usize) {
        self.0 = mix64(self.0 ^ i as u64);
    }
}

/// `BuildHasher` producing [`MixHasher`]s (seeded with an arbitrary odd
/// constant so an empty write stream still finishes nonzero).
#[derive(Clone, Copy, Default)]
pub struct MixBuild;

impl std::hash::BuildHasher for MixBuild {
    type Hasher = MixHasher;
    fn build_hasher(&self) -> MixHasher {
        MixHasher(0x9E37_79B9_7F4A_7C15)
    }
}

impl<K: Copy + Eq + Hash> SpaceSaving<K> {
    /// An empty sketch monitoring at most `k` keys.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "SpaceSaving capacity must be positive");
        SpaceSaving {
            capacity: k,
            total: 0,
            slots: Vec::with_capacity(k),
            index: HashMap::with_capacity_and_hasher(k, MixBuild),
        }
    }

    /// Maximum number of monitored keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stream length observed so far (`N` in the error bound).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observes one occurrence of `key`.
    #[inline]
    pub fn offer(&mut self, key: K) {
        self.offer_n(key, 1);
    }

    /// Observes `weight` occurrences of `key` at once.
    pub fn offer_n(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        if let Some(&at) = self.index.get(&key) {
            self.slots[at].count += weight;
        } else if self.slots.len() < self.capacity {
            self.index.insert(key, self.slots.len());
            self.slots.push(HeavyHitter {
                key,
                count: weight,
                error: 0,
            });
        } else {
            // Replace the minimum counter: the newcomer inherits its
            // count as both floor and error bound.
            let (at, _) = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, h)| h.count)
                .expect("capacity > 0");
            let evicted = self.slots[at];
            self.index.remove(&evicted.key);
            self.index.insert(key, at);
            self.slots[at] = HeavyHitter {
                key,
                count: evicted.count + weight,
                error: evicted.count,
            };
        }
    }

    /// All monitored counters, highest `count` first.
    pub fn entries(&self) -> Vec<HeavyHitter<K>> {
        let mut out = self.slots.clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.count));
        out
    }

    /// The `n` heaviest monitored counters, highest `count` first.
    pub fn top(&self, n: usize) -> Vec<HeavyHitter<K>> {
        let mut out = self.entries();
        out.truncate(n);
        out
    }
}

impl<K: Copy + Eq + Hash + std::fmt::Debug> std::fmt::Debug for SpaceSaving<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpaceSaving")
            .field("capacity", &self.capacity)
            .field("total", &self.total)
            .field("monitored", &self.slots.len())
            .finish()
    }
}

/// Serving rates over one time window, derived from counter and
/// histogram deltas between window boundaries.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowStats {
    /// Unix seconds at which the window starts.
    pub start_unix_s: u64,
    /// Window span in seconds (a closed window spans one or more
    /// configured windows when traffic was idle in between; the open
    /// window spans the seconds elapsed so far).
    pub span_secs: u64,
    /// Requests completed in the window.
    pub requests: u64,
    /// Point queries answered in the window.
    pub queries: u64,
    /// Queries answered from the result cache in the window.
    pub cache_hits: u64,
    /// Queries per second over the window span.
    pub qps: f64,
    /// `cache_hits / queries` (0 when no queries landed).
    pub hit_rate: f64,
    /// Median request latency in the window, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency in the window, microseconds.
    pub p99_us: f64,
    /// Whether this is the still-accumulating current window.
    pub open: bool,
}

struct RingState {
    /// Window id (`unix_s / window_secs`) the live counters belong to.
    window_id: u64,
    /// Cumulative totals captured at the last window boundary.
    requests_at: u64,
    queries_at: u64,
    hits_at: u64,
    hist_at: HistogramSnapshot,
    /// Closed windows, newest last.
    closed: Vec<WindowStats>,
}

/// A bounded ring of per-window serving rates ([`WindowStats`]).
///
/// [`TimeSeriesRing::record`] is wait-free: three `Relaxed` adds plus
/// one [`LogHistogram`] record. Whichever caller first crosses a window
/// boundary closes the previous window under a `try_lock` — contenders
/// skip rather than wait, so recording never blocks. Readers
/// ([`TimeSeriesRing::recent`]) take the same lock briefly and also see
/// the still-open window as a partial entry, so dashboards show live
/// traffic without waiting a full window.
pub struct TimeSeriesRing {
    window_secs: u64,
    capacity: usize,
    requests: AtomicU64,
    queries: AtomicU64,
    hits: AtomicU64,
    latency: LogHistogram,
    current_window: AtomicU64,
    state: Mutex<RingState>,
}

impl TimeSeriesRing {
    /// A ring keeping the most recent `capacity` closed windows of
    /// `window_secs` seconds each.
    ///
    /// # Panics
    /// Panics when `window_secs == 0` or `capacity == 0`.
    pub fn new(window_secs: u64, capacity: usize) -> Self {
        assert!(window_secs > 0, "window_secs must be positive");
        assert!(capacity > 0, "capacity must be positive");
        TimeSeriesRing {
            window_secs,
            capacity,
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            latency: LogHistogram::new(),
            current_window: AtomicU64::new(0),
            state: Mutex::new(RingState {
                window_id: 0,
                requests_at: 0,
                queries_at: 0,
                hits_at: 0,
                hist_at: LogHistogram::new().snapshot(),
                closed: Vec::new(),
            }),
        }
    }

    /// The configured window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Records one completed request: `queries` answered (of which
    /// `cache_hits` came from the cache) in `latency_ns` wall time, at
    /// `now_unix_s`. Wait-free except for the at-most-once-per-window
    /// boundary roll, which is a `try_lock` (skipped under contention).
    #[inline]
    pub fn record(&self, queries: u64, cache_hits: u64, latency_ns: u64, now_unix_s: u64) {
        // Roll first so this sample lands in the window it belongs to.
        self.tick(now_unix_s);
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(queries, Ordering::Relaxed);
        self.hits.fetch_add(cache_hits, Ordering::Relaxed);
        self.latency.record(latency_ns);
    }

    /// Closes the previous window if `now_unix_s` has crossed a window
    /// boundary. Called automatically by [`TimeSeriesRing::record`] and
    /// [`TimeSeriesRing::recent`]; exposed so scrape paths can roll
    /// windows on idle daemons.
    pub fn tick(&self, now_unix_s: u64) {
        let wid = now_unix_s / self.window_secs;
        if self.current_window.load(Ordering::Relaxed) == wid {
            return;
        }
        if let Some(mut g) = self.state.try_lock() {
            self.roll_locked(&mut g, wid);
        }
    }

    fn roll_locked(&self, g: &mut RingState, wid: u64) {
        if g.window_id == wid {
            return;
        }
        let prev = g.window_id;
        if prev != 0 && wid > prev {
            let (stats, hist_now) = self.window_since(g, prev, (wid - prev) * self.window_secs);
            g.requests_at += stats.requests;
            g.queries_at += stats.queries;
            g.hits_at += stats.cache_hits;
            g.hist_at = hist_now;
            if stats.requests > 0 || !g.closed.is_empty() {
                g.closed.push(stats);
                let excess = g.closed.len().saturating_sub(self.capacity);
                if excess > 0 {
                    g.closed.drain(..excess);
                }
            }
        }
        g.window_id = wid;
        self.current_window.store(wid, Ordering::Relaxed);
    }

    /// Stats for the span from the last boundary to now, plus the
    /// histogram snapshot backing them (so rolls can advance `hist_at`
    /// without a second scrape).
    fn window_since(
        &self,
        g: &RingState,
        start_wid: u64,
        span_secs: u64,
    ) -> (WindowStats, HistogramSnapshot) {
        let requests = self.requests.load(Ordering::Relaxed) - g.requests_at;
        let queries = self.queries.load(Ordering::Relaxed) - g.queries_at;
        let hits = self.hits.load(Ordering::Relaxed) - g.hits_at;
        let hist_now = self.latency.snapshot();
        let delta = hist_now.delta(&g.hist_at);
        let span = span_secs.max(1);
        let stats = WindowStats {
            start_unix_s: start_wid * self.window_secs,
            span_secs,
            requests,
            queries,
            cache_hits: hits,
            qps: queries as f64 / span as f64,
            hit_rate: if queries > 0 {
                hits as f64 / queries as f64
            } else {
                0.0
            },
            p50_us: delta.quantile(0.50) as f64 / 1_000.0,
            p99_us: delta.quantile(0.99) as f64 / 1_000.0,
            open: false,
        };
        (stats, hist_now)
    }

    /// Up to `n` windows, newest first. The first entry is the
    /// still-open current window (marked [`WindowStats::open`]) whenever
    /// it has traffic; closed windows follow.
    pub fn recent(&self, n: usize, now_unix_s: u64) -> Vec<WindowStats> {
        if n == 0 {
            return Vec::new();
        }
        let wid = now_unix_s / self.window_secs;
        let mut g = self.state.lock();
        self.roll_locked(&mut g, wid);
        let mut out = Vec::with_capacity(n.min(g.closed.len() + 1));
        let elapsed = now_unix_s - wid * self.window_secs;
        let (mut open, _) = self.window_since(&g, wid, elapsed);
        open.open = true;
        if open.requests > 0 {
            out.push(open);
        }
        for w in g.closed.iter().rev() {
            if out.len() >= n {
                break;
            }
            out.push(w.clone());
        }
        out
    }

    /// The most recent *closed* window, if any has been completed.
    pub fn last_closed(&self, now_unix_s: u64) -> Option<WindowStats> {
        let wid = now_unix_s / self.window_secs;
        let mut g = self.state.lock();
        self.roll_locked(&mut g, wid);
        g.closed.last().cloned()
    }
}

impl std::fmt::Debug for TimeSeriesRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSeriesRing")
            .field("window_secs", &self.window_secs)
            .field("capacity", &self.capacity)
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .finish()
    }
}

/// Default number of monitored heavy-hitter counters.
pub const DEFAULT_HEAVY_HITTERS: usize = 32;

/// The aggregate workload sketch the query engine feeds on every batch:
/// distinct-pair HLL (wait-free `fetch_max` per pair), hot-pair and
/// hot-source SpaceSaving sketches (one short lock per *batch*, not per
/// pair) and a total-pair counter.
pub struct WorkloadSketch {
    distinct: AtomicHyperLogLog,
    total_pairs: AtomicU64,
    pairs: Mutex<SpaceSaving<(u32, u32)>>,
    sources: Mutex<SpaceSaving<u32>>,
}

impl Default for WorkloadSketch {
    fn default() -> Self {
        Self::new(DEFAULT_HEAVY_HITTERS)
    }
}

impl WorkloadSketch {
    /// A fresh sketch monitoring `k` heavy-hitter counters for pairs and
    /// for source vertices.
    pub fn new(k: usize) -> Self {
        WorkloadSketch {
            distinct: AtomicHyperLogLog::new(),
            total_pairs: AtomicU64::new(0),
            pairs: Mutex::new(SpaceSaving::new(k)),
            sources: Mutex::new(SpaceSaving::new(k)),
        }
    }

    /// Records one query batch in full: totals (wait-free) then heavy
    /// hitters (locked). Equivalent to [`Self::record_totals`] followed
    /// by [`Self::record_hitters`] — callers that must never stall a
    /// serving thread split the two and run the hitters half on a
    /// background thread instead.
    pub fn record_batch(&self, batch: &[(u32, u32)]) {
        self.record_totals(batch);
        self.record_hitters(batch);
    }

    /// The wait-free half of recording a batch: every pair into the
    /// distinct-pair HLL (one relaxed `fetch_max` each) plus the
    /// total-pair counter. Any number of serving threads may call this
    /// concurrently without blocking each other.
    pub fn record_totals(&self, batch: &[(u32, u32)]) {
        if batch.is_empty() {
            return;
        }
        for &(s, t) in batch {
            self.distinct.observe(pair_fingerprint(s, t));
        }
        self.total_pairs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }

    /// The locked half of recording a batch: the hot-pair and
    /// hot-source SpaceSaving sketches, one short lock each. On
    /// distinct-heavy traffic every pair evicts a monitored counter
    /// (three index-map touches per sketch), which is why the query
    /// engine runs this on its sketcher thread rather than on the
    /// request path.
    pub fn record_hitters(&self, batch: &[(u32, u32)]) {
        self.record_hitters_sampled(batch, 1);
    }

    /// [`Self::record_hitters`] over a systematic 1-in-`stride` sample:
    /// every `stride`-th pair is offered with weight `stride`, so
    /// expected counts are unbiased while the update cost drops by the
    /// same factor. A key's reported count picks up sampling noise on
    /// the order of `stride` per occurrence run in addition to the
    /// usual SpaceSaving `N/k` bound — callers use `stride > 1` only to
    /// bound sketch CPU when recording cannot keep up with the serving
    /// threads (the query engine's sketcher under sustained overload).
    /// `stride = 1` (or `0`) is the exact path.
    pub fn record_hitters_sampled(&self, batch: &[(u32, u32)], stride: usize) {
        if batch.is_empty() {
            return;
        }
        let stride = stride.max(1);
        let weight = stride as u64;
        {
            let mut pairs = self.pairs.lock();
            for &p in batch.iter().step_by(stride) {
                pairs.offer_n(p, weight);
            }
        }
        {
            let mut sources = self.sources.lock();
            for &(s, _) in batch.iter().step_by(stride) {
                sources.offer_n(s, weight);
            }
        }
    }

    /// Estimated number of distinct `(s, t)` pairs observed.
    pub fn distinct_pairs(&self) -> f64 {
        self.distinct.estimate()
    }

    /// Total pairs observed (stream length `N`).
    pub fn total_pairs(&self) -> u64 {
        self.total_pairs.load(Ordering::Relaxed)
    }

    /// The `n` hottest `(s, t)` pairs, highest count first.
    pub fn hot_pairs(&self, n: usize) -> Vec<HeavyHitter<(u32, u32)>> {
        self.pairs.lock().top(n)
    }

    /// The `n` hottest source vertices, highest count first.
    pub fn hot_sources(&self, n: usize) -> Vec<HeavyHitter<u32>> {
        self.sources.lock().top(n)
    }

    /// Guaranteed traffic share of the single hottest pair:
    /// `guaranteed_count / N` in `0..=1` (0 before any traffic). Uses
    /// the heavy hitter's guaranteed lower bound, so the share is never
    /// overstated.
    pub fn hot_pair_share(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0 {
            return 0.0;
        }
        self.pairs
            .lock()
            .top(1)
            .first()
            .map_or(0.0, |h| h.guaranteed() as f64 / total as f64)
    }
}

impl std::fmt::Debug for WorkloadSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSketch")
            .field("total_pairs", &self.total_pairs())
            .field("distinct_pairs", &self.distinct_pairs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(estimate: f64, exact: f64) -> f64 {
        (estimate - exact).abs() / exact
    }

    #[test]
    fn hll_small_counts_are_near_exact() {
        let mut h = HyperLogLog::new();
        for i in 0..100u64 {
            h.insert(i);
        }
        assert!(h.is_sparse());
        assert!(rel_err(h.estimate(), 100.0) < 0.02, "{}", h.estimate());
        // Duplicates do not move the estimate.
        let before = h.estimate();
        for i in 0..100u64 {
            h.insert(i);
        }
        assert_eq!(h.estimate(), before);
    }

    #[test]
    fn hll_promotes_to_dense_and_stays_accurate() {
        let mut h = HyperLogLog::new();
        for i in 0..100_000u64 {
            h.insert(i);
        }
        assert!(!h.is_sparse(), "100k distinct must promote");
        assert!(
            rel_err(h.estimate(), 100_000.0) < 0.02,
            "estimate {}",
            h.estimate()
        );
    }

    #[test]
    fn hll_merge_equals_union() {
        let mut a = HyperLogLog::new();
        let mut b = HyperLogLog::new();
        let mut union = HyperLogLog::new();
        for i in 0..30_000u64 {
            a.insert(i);
            union.insert(i);
        }
        // Overlapping range: the union is 50k distinct, not 60k.
        for i in 10_000..50_000u64 {
            b.insert(i);
            union.insert(i);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), union.estimate());
        assert!(rel_err(a.estimate(), 50_000.0) < 0.02);
        // Sparse-into-sparse merge too.
        let mut s1 = HyperLogLog::new();
        let mut s2 = HyperLogLog::new();
        for i in 0..50u64 {
            s1.insert(i);
        }
        for i in 25..75u64 {
            s2.insert(i);
        }
        s1.merge(&s2);
        assert!(s1.is_sparse());
        assert!(rel_err(s1.estimate(), 75.0) < 0.03, "{}", s1.estimate());
    }

    #[test]
    fn atomic_hll_matches_sequential() {
        let seq = {
            let mut h = HyperLogLog::new();
            for i in 0..50_000u64 {
                h.insert(i);
            }
            h
        };
        let shared = std::sync::Arc::new(AtomicHyperLogLog::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let shared = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    // Overlapping shards: every thread covers a quarter
                    // plus spillover, the union is exactly 0..50k.
                    for i in (t * 12_500)..((t + 1) * 12_500 + 5_000).min(50_000) {
                        shared.observe(mix64(i as u64));
                    }
                });
            }
        });
        assert_eq!(shared.estimate(), seq.estimate());
        assert_eq!(shared.to_sketch().estimate(), seq.estimate());
    }

    #[test]
    fn spacesaving_finds_heavy_hitters_with_bounded_error() {
        let mut ss = SpaceSaving::new(8);
        // Key 0 takes half the stream; keys 1..=100 share the rest.
        for round in 0..100u32 {
            for _ in 0..100 {
                ss.offer(0u32);
            }
            for k in 1..=100u32 {
                ss.offer(k);
            }
            let _ = round;
        }
        let n = ss.total();
        assert_eq!(n, 20_000);
        let top = ss.top(1);
        assert_eq!(top[0].key, 0, "the dominant key must be monitored");
        assert!(top[0].guaranteed() >= 10_000 - n / 8);
        for h in ss.entries() {
            assert!(h.error <= n / 8, "error {} > N/k", h.error);
            assert!(h.count >= h.error);
        }
    }

    #[test]
    fn spacesaving_counts_are_upper_bounds() {
        let mut ss = SpaceSaving::new(4);
        let mut exact: HashMap<u32, u64> = HashMap::new();
        let mut state = 0x1234_5678_u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = ((state >> 33) % 64) as u32;
            ss.offer(key);
            *exact.entry(key).or_default() += 1;
        }
        for h in ss.entries() {
            let truth = exact[&h.key];
            assert!(h.count >= truth, "count must never undercount");
            assert!(h.guaranteed() <= truth, "guaranteed must never overcount");
        }
    }

    #[test]
    fn timeseries_ring_closes_windows_and_derives_rates() {
        let ring = TimeSeriesRing::new(10, 4);
        let t0 = 1_000_000u64;
        // Window 1: 5 requests × 100 queries, half cache hits, 1 ms.
        for _ in 0..5 {
            ring.record(100, 50, 1_000_000, t0);
        }
        // Crossing into the next window closes the first.
        ring.record(200, 0, 8_000_000, t0 + 10);
        let closed = ring.last_closed(t0 + 10).expect("one closed window");
        assert_eq!(closed.requests, 5);
        assert_eq!(closed.queries, 500);
        assert_eq!(closed.cache_hits, 250);
        assert_eq!(closed.qps, 50.0);
        assert_eq!(closed.hit_rate, 0.5);
        assert!(closed.p50_us >= 1_000.0 && closed.p50_us < 1_100.0);
        assert!(!closed.open);
        // recent() leads with the open window.
        let recent = ring.recent(8, t0 + 15);
        assert!(recent[0].open);
        assert_eq!(recent[0].requests, 1);
        assert_eq!(recent[0].queries, 200);
        assert_eq!(recent[1].requests, 5);
    }

    #[test]
    fn timeseries_ring_is_bounded_and_spans_idle_gaps() {
        let ring = TimeSeriesRing::new(10, 2);
        let t0 = 2_000_000u64;
        for w in 0..5u64 {
            ring.record(10, 0, 1_000, t0 + w * 10);
        }
        // Long idle gap: the next record closes one window spanning it.
        ring.record(10, 0, 1_000, t0 + 100);
        let recent = ring.recent(16, t0 + 100);
        let closed: Vec<_> = recent.iter().filter(|w| !w.open).collect();
        assert!(closed.len() <= 2, "ring capacity bounds closed windows");
        assert!(closed[0].span_secs >= 10);
    }

    #[test]
    fn workload_sketch_aggregates_batches() {
        let ws = WorkloadSketch::new(8);
        let mut batch = vec![(7u32, 9u32); 60];
        for i in 0..40u32 {
            batch.push((i, i + 1));
        }
        ws.record_batch(&batch);
        ws.record_batch(&[]);
        assert_eq!(ws.total_pairs(), 100);
        // 41 distinct pairs; small counts are near-exact.
        let d = ws.distinct_pairs();
        assert!((d - 41.0).abs() < 2.0, "distinct estimate {d}");
        let hot = ws.hot_pairs(1);
        assert_eq!(hot[0].key, (7, 9));
        assert!(ws.hot_pair_share() > 0.5);
        let sources = ws.hot_sources(2);
        assert_eq!(sources[0].key, 7);
    }
}
