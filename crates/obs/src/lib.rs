//! Workspace-wide observability primitives for the PSPC serving stack:
//! **log-bucketed latency histograms**, **per-request tracing** and a
//! **structured leveled logger** — all dependency-free (in-tree shims
//! only) and lock-free on the hot paths.
//!
//! # Pieces
//!
//! * [`hist`] — [`LogHistogram`]: a fixed-size HDR-style histogram
//!   (~2 significant digits) whose `record` is three `Relaxed` atomic
//!   adds and whose scrape is atomic loads, so metric exposition can
//!   never stall request recording. Snapshots derive p50/p90/p99/p999
//!   from cumulative bucket counts and render directly into Prometheus
//!   `_bucket`/`_sum`/`_count` series.
//! * [`trace`] — [`Span`]/[`StageTimer`] carry a per-request trace ID
//!   through the daemon's pipeline, attributing time to [`Stage`]s
//!   (parse, cache probe, prepare, queue wait, execute, merge, write).
//!   Completed [`RequestTrace`]s land in a bounded [`TraceRing`]
//!   (`GET /debug/trace`) and a top-K [`SlowLog`] (`GET /debug/slow`).
//! * [`log`] — `PSPC_LOG`-leveled `key=value` records on stderr via the
//!   [`error!`], [`warn!`], [`info!`] and [`debug!`] macros.
//!
//! # Quick start
//!
//! ```
//! use pspc_obs::{LogHistogram, Span, Stage};
//!
//! let hist = LogHistogram::new();
//! let mut span = Span::new();
//! let sum: u64 = span.time(Stage::Execute, || (0..100u64).sum());
//! assert_eq!(sum, 4950);
//! hist.record(span.stage_ns()[Stage::Execute as usize]);
//! let trace = span.finish("query", "ok", 100);
//! assert!(trace.total_ns >= trace.stage_ns[Stage::Execute as usize]);
//! assert_eq!(hist.snapshot().count(), 1);
//! pspc_obs::info!("batch done", trace = trace.id, items = trace.items);
//! ```

pub mod hist;
pub mod log;
pub mod trace;

pub use hist::{bucket_bounds, bucket_index, HistogramSnapshot, LogHistogram, NUM_BUCKETS};
pub use log::{set_level, Level};
pub use trace::{next_trace_id, RequestTrace, SlowLog, Span, Stage, StageTimer, TraceRing};
