//! Workspace-wide observability primitives for the PSPC serving stack:
//! **log-bucketed latency histograms**, **per-request tracing**,
//! **streaming workload sketches** and a **structured leveled logger** —
//! all dependency-free (in-tree shims only) and lock-free on the hot
//! paths.
//!
//! # Pieces
//!
//! * [`hist`] — [`LogHistogram`]: a fixed-size HDR-style histogram
//!   (~2 significant digits) whose `record` is three `Relaxed` atomic
//!   adds and whose scrape is atomic loads, so metric exposition can
//!   never stall request recording. Snapshots derive p50/p90/p99/p999
//!   from cumulative bucket counts, subtract
//!   ([`HistogramSnapshot::delta`]) to yield windowed quantiles, and
//!   render directly into Prometheus `_bucket`/`_sum`/`_count` series.
//! * [`trace`] — [`Span`]/[`StageTimer`] carry a per-request trace ID
//!   through the daemon's pipeline, attributing time to [`Stage`]s
//!   (parse, cache probe, prepare, queue wait, execute, merge, write).
//!   IDs are minted locally or **propagated from the client**
//!   ([`Span::with_id`] / [`Span::set_id`] — the `x-pspc-trace-id`
//!   header and the binary `PSQ2` frame), so every hop of a request
//!   shares one trace. Completed [`RequestTrace`]s land in a bounded
//!   [`TraceRing`] (`GET /debug/trace`) and a top-K [`SlowLog`]
//!   (`GET /debug/slow`).
//! * [`sketch`] — streaming workload analytics in constant memory:
//!   [`HyperLogLog`]/[`AtomicHyperLogLog`] distinct-pair estimation
//!   (14-bit HyperLogLog++, sparse→dense, mergeable, ~1% error),
//!   [`SpaceSaving`] top-K heavy hitters with guaranteed `≤ N/k` count
//!   error, a [`TimeSeriesRing`] of per-window qps / hit-rate / p50 /
//!   p99 ([`WindowStats`]) built from histogram deltas, and the
//!   [`WorkloadSketch`] aggregate the query engine feeds per batch
//!   (`GET /debug/hotspots`, `GET /debug/timeseries`).
//! * [`log`] — `PSPC_LOG`-leveled `key=value` records on stderr via the
//!   [`error!`], [`warn!`], [`info!`] and [`debug!`] macros
//!   (`PSPC_LOG=off` silences everything).
//!
//! # Quick start
//!
//! ```
//! use pspc_obs::{LogHistogram, Span, Stage, WorkloadSketch};
//!
//! let hist = LogHistogram::new();
//! let mut span = Span::new();
//! let sum: u64 = span.time(Stage::Execute, || (0..100u64).sum());
//! assert_eq!(sum, 4950);
//! hist.record(span.stage_ns()[Stage::Execute as usize]);
//! let trace = span.finish("query", "ok", 100);
//! assert!(trace.total_ns >= trace.stage_ns[Stage::Execute as usize]);
//! assert_eq!(hist.snapshot().count(), 1);
//!
//! let workload = WorkloadSketch::new(16);
//! workload.record_batch(&[(0, 42), (0, 42), (7, 9)]);
//! assert_eq!(workload.total_pairs(), 3);
//! assert_eq!(workload.hot_pairs(1)[0].key, (0, 42));
//! pspc_obs::info!("batch done", trace = trace.id, items = trace.items);
//! ```

pub mod hist;
pub mod log;
pub mod sketch;
pub mod trace;

pub use hist::{bucket_bounds, bucket_index, HistogramSnapshot, LogHistogram, NUM_BUCKETS};
pub use log::{set_level, set_off, Level};
pub use sketch::{
    pair_fingerprint, AtomicHyperLogLog, HeavyHitter, HyperLogLog, SpaceSaving, TimeSeriesRing,
    WindowStats, WorkloadSketch, DEFAULT_HEAVY_HITTERS, HLL_PRECISION, HLL_REGISTERS,
};
pub use trace::{next_trace_id, RequestTrace, SlowLog, Span, Stage, StageTimer, TraceRing};
