//! A structured, leveled logger: one-line `key=value` records on stderr
//! with UTC timestamps, gated by the `PSPC_LOG` environment variable.
//!
//! Levels are `error < warn < info < debug`; the active level comes from
//! `PSPC_LOG` (default `info`, unknown values fall back to `info`,
//! `off`/`none` silences everything including errors) and can be
//! overridden programmatically with [`set_level`] / [`set_off`]. The
//! [`error!`](crate::error), [`warn!`](crate::warn),
//! [`info!`](crate::info) and [`debug!`](crate::debug) macros check
//! [`enabled`] *before* evaluating their message or field expressions,
//! so a disabled `debug!` costs one atomic load and never allocates.
//!
//! Record shape (one line, machine-greppable):
//!
//! ```text
//! ts=2026-08-08T12:34:56.789Z level=info msg="daemon listening" addr=127.0.0.1:7411
//! ```
//!
//! `msg` is always quoted (with `"` and `\` escaped); field values are
//! rendered through `Display` verbatim, so callers keep values
//! space-free (ids, numbers, addresses, paths). Diagnostics go to
//! stderr by design — stdout stays reserved for user-facing results
//! (query answers, bench tables).

use std::fmt::Display;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered `Error < Warn < Info < Debug`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The daemon cannot do what was asked of it.
    Error = 0,
    /// Something is off but service continues.
    Warn = 1,
    /// Lifecycle and notable events (the default level).
    Info = 2,
    /// Per-connection/per-request detail.
    Debug = 3,
}

impl Level {
    /// The level's lowercase name as it appears in records.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `PSPC_LOG` value (case-insensitive); `None` for unknown
    /// strings.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: u8 = u8::MAX;

/// Stored filter value meaning "emit nothing" (`PSPC_LOG=off`). Levels
/// are stored shifted up by one so `0` can sit below [`Level::Error`].
const OFF: u8 = 0;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// Stored filter encoding: `OFF` (0) silences everything; a level `l`
/// is stored as `l as u8 + 1`.
fn encode(l: Level) -> u8 {
    l as u8 + 1
}

fn filter_from_env() -> u8 {
    match std::env::var("PSPC_LOG").ok().as_deref() {
        Some(s) if matches!(s.trim().to_ascii_lowercase().as_str(), "off" | "none") => OFF,
        Some(s) => Level::parse(s).map_or(encode(Level::Info), encode),
        None => encode(Level::Info),
    }
}

/// The current stored filter, lazily initialized from `PSPC_LOG`.
#[inline]
fn current_filter() -> u8 {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        UNINIT => {
            let f = filter_from_env();
            // A concurrent first call may race; both read the same env
            // var, so the outcome is identical either way.
            MAX_LEVEL.store(f, Ordering::Relaxed);
            f
        }
        f => f,
    }
}

/// The active maximum level (lazily initialized from `PSPC_LOG` on first
/// use; default [`Level::Info`]). `None` when the logger is fully
/// silenced (`PSPC_LOG=off` or [`set_off`]).
pub fn max_level() -> Option<Level> {
    match current_filter() {
        OFF => None,
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        _ => Some(Level::Debug),
    }
}

/// Overrides the active level (e.g. for tests or a `--quiet` flag),
/// bypassing `PSPC_LOG`.
pub fn set_level(l: Level) {
    MAX_LEVEL.store(encode(l), Ordering::Relaxed);
}

/// Fully silences the logger (the programmatic equivalent of
/// `PSPC_LOG=off`): every level, including [`Level::Error`], stops
/// emitting until [`set_level`] re-enables one.
pub fn set_off() {
    MAX_LEVEL.store(OFF, Ordering::Relaxed);
}

/// Whether records at `l` are currently emitted. One atomic load on the
/// fast path.
#[inline]
pub fn enabled(l: Level) -> bool {
    encode(l) <= current_filter()
}

/// Days-to-civil-date conversion (Howard Hinnant's algorithm), `z` being
/// days since 1970-01-01.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + (m <= 2) as i64, m, d)
}

/// `unix_ms` as `YYYY-MM-DDThh:mm:ss.mmmZ`.
pub fn format_timestamp(unix_ms: u64) -> String {
    let secs = unix_ms / 1000;
    let ms = unix_ms % 1000;
    let (y, mo, d) = civil_from_days((secs / 86_400) as i64);
    let tod = secs % 86_400;
    format!(
        "{y:04}-{mo:02}-{d:02}T{:02}:{:02}:{:02}.{ms:03}Z",
        tod / 3600,
        tod % 3600 / 60,
        tod % 60,
    )
}

/// Renders one record line (no trailing newline). Pure — unit-testable
/// without capturing stderr.
pub fn format_record(
    level: Level,
    unix_ms: u64,
    msg: &dyn Display,
    fields: &[(&str, &dyn Display)],
) -> String {
    use std::fmt::Write;
    let mut line = format!(
        "ts={} level={} msg=\"",
        format_timestamp(unix_ms),
        level.name()
    );
    let rendered = msg.to_string();
    for c in rendered.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            c => line.push(c),
        }
    }
    line.push('"');
    for (k, v) in fields {
        let _ = write!(line, " {k}={v}");
    }
    line
}

/// Emits one record to stderr (single `write` call, so concurrent
/// records do not interleave mid-line). Called by the level macros
/// after their [`enabled`] check; callers using it directly should gate
/// on [`enabled`] themselves.
pub fn emit(level: Level, msg: &dyn Display, fields: &[(&str, &dyn Display)]) {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let mut line = format_record(level, unix_ms, msg, fields);
    line.push('\n');
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(line.as_bytes());
}

/// Logs at [`Level::Error`]: `error!("msg", key = value, ...)`.
#[macro_export]
macro_rules! error {
    ($msg:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit(
                $crate::log::Level::Error,
                &$msg,
                &[$((stringify!($k), &$v as &dyn ::std::fmt::Display)),*],
            );
        }
    };
}

/// Logs at [`Level::Warn`]: `warn!("msg", key = value, ...)`.
#[macro_export]
macro_rules! warn {
    ($msg:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit(
                $crate::log::Level::Warn,
                &$msg,
                &[$((stringify!($k), &$v as &dyn ::std::fmt::Display)),*],
            );
        }
    };
}

/// Logs at [`Level::Info`]: `info!("msg", key = value, ...)`.
#[macro_export]
macro_rules! info {
    ($msg:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit(
                $crate::log::Level::Info,
                &$msg,
                &[$((stringify!($k), &$v as &dyn ::std::fmt::Display)),*],
            );
        }
    };
}

/// Logs at [`Level::Debug`]: `debug!("msg", key = value, ...)`. Costs
/// one atomic load when debug logging is off.
#[macro_export]
macro_rules! debug {
    ($msg:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit(
                $crate::log::Level::Debug,
                &$msg,
                &[$((stringify!($k), &$v as &dyn ::std::fmt::Display)),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn timestamps_are_civil_utc() {
        assert_eq!(format_timestamp(0), "1970-01-01T00:00:00.000Z");
        // 2026-08-08 00:00:00 UTC.
        assert_eq!(
            format_timestamp(1_786_147_200_000),
            "2026-08-08T00:00:00.000Z"
        );
        // Leap-year February boundary: 2024-02-29 23:59:59.999 UTC.
        assert_eq!(
            format_timestamp(1_709_251_199_999),
            "2024-02-29T23:59:59.999Z"
        );
    }

    #[test]
    fn records_are_one_line_key_value() {
        let line = format_record(
            Level::Info,
            1_786_147_200_123,
            &"daemon listening",
            &[("addr", &"127.0.0.1:7411"), ("workers", &4)],
        );
        assert_eq!(
            line,
            "ts=2026-08-08T00:00:00.123Z level=info msg=\"daemon listening\" \
             addr=127.0.0.1:7411 workers=4"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn message_quoting_escapes() {
        let line = format_record(Level::Warn, 0, &"a \"b\" \\ c\nd", &[]);
        assert!(line.contains("msg=\"a \\\"b\\\" \\\\ c\\nd\""));
    }

    /// Serializes tests that mutate the process-global level filter.
    static LEVEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn macros_compile_for_every_shape() {
        let _g = LEVEL_LOCK.lock().unwrap();
        // Level gating itself is covered via set_level; this pins the
        // macro grammar (no fields, one field, trailing comma, String
        // messages, expression values).
        set_level(Level::Error);
        crate::error!("plain");
        crate::warn!("one", code = 7);
        crate::info!(format!("built {}", "msg"), a = 1, b = "x",);
        crate::debug!("fields", trace = 99u64, q = 2 + 2);
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }

    #[test]
    fn off_silences_every_level() {
        let _g = LEVEL_LOCK.lock().unwrap();
        set_off();
        assert_eq!(max_level(), None);
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert!(!enabled(l), "{} must be silenced when off", l.name());
        }
        // The macros stay safe to call while silenced.
        crate::error!("dropped", code = 1);
        set_level(Level::Info);
        assert_eq!(max_level(), Some(Level::Info));
        assert!(enabled(Level::Error));
    }
}
