//! Log-bucketed latency histograms (HDR-style): lock-free to record,
//! mergeable, with quantiles derived from cumulative bucket counts.
//!
//! # Bucketing scheme
//!
//! Values are `u64` (the workspace convention is nanoseconds, but the
//! histogram is unit-agnostic). The value range is covered by a
//! **log-linear** grid: each power-of-two octave is split into
//! [`SUB_COUNT`] equal-width sub-buckets, so a bucket's width is at most
//! `1/32` of its lower bound — every recorded value is representable
//! with a relative error below `1/32` (≈ 3.2%, about two significant
//! digits), the same idea as HdrHistogram at 2 significant figures.
//! Values below [`SUB_COUNT`] get exact unit-width buckets. The whole
//! `u64` range maps into [`NUM_BUCKETS`] = 1920 fixed buckets, so a
//! histogram is one flat `AtomicU64` array of ~15 KiB — no allocation,
//! resizing or locking, ever.
//!
//! # Concurrency
//!
//! [`LogHistogram::record`] is three `Relaxed` `fetch_add`s (bucket,
//! count, sum); any number of threads record concurrently and a scrape
//! ([`LogHistogram::snapshot`]) only performs atomic loads, so recording
//! can never block on a scrape nor vice versa. A snapshot taken while
//! writers are active is a *racy-but-coherent* view: each counter is
//! individually consistent, and `count` may trail the bucket total by
//! in-flight increments — quantile math clamps accordingly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (32 → relative error below 1/32).
pub const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total buckets covering all of `u64`: one unit-width bucket per value
/// below [`SUB_COUNT`], then [`SUB_COUNT`] buckets for each of the 59
/// remaining octaves.
pub const NUM_BUCKETS: usize = SUB_COUNT * (64 - SUB_BITS as usize + 1);

/// The bucket index holding `v`. Monotone in `v` and total over `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros(); // position of the highest set bit, ≥ SUB_BITS
        let base = (top - SUB_BITS + 1) as usize * SUB_COUNT;
        base + ((v >> (top - SUB_BITS)) as usize & (SUB_COUNT - 1))
    }
}

/// The inclusive `[lo, hi]` value range of bucket `i`.
///
/// # Panics
/// Panics when `i >= NUM_BUCKETS`.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i < SUB_COUNT {
        (i as u64, i as u64)
    } else {
        let top = SUB_BITS + (i / SUB_COUNT) as u32 - 1;
        let width = 1u64 << (top - SUB_BITS);
        let lo = (1u64 << top) + (i % SUB_COUNT) as u64 * width;
        (lo, lo + (width - 1))
    }
}

/// A fixed-size, lock-free, mergeable latency histogram.
///
/// See the [module docs](self) for the bucketing scheme and concurrency
/// story. All counters are `Relaxed` atomics: recording is wait-free and
/// never contends with scrapes.
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram (~15 KiB, allocated once).
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free: three `Relaxed` `fetch_add`s.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping on overflow, which at
    /// nanosecond resolution needs ~584 years of accumulated latency).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds every sample of `other` into `self` (bucket-wise adds).
    /// Equivalent to having recorded the union of both sample streams.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = o.load(Ordering::Relaxed);
            if v > 0 {
                b.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An owned point-in-time copy (atomic loads only — never blocks
    /// recorders), from which any number of quantiles derive for free.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the count from the copied buckets rather than loading
        // the separate counter: under concurrent recording the three
        // adds are not atomic as a group, and quantile ranks must agree
        // with the bucket totals actually captured.
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets: buckets.into_boxed_slice(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish_non_exhaustive()
    }
}

/// An owned scrape of a [`LogHistogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Samples captured.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of captured values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether the histogram had no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the captured values (0 on an empty snapshot).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile (`q` in `0..=1`): the upper bound of the
    /// bucket holding the sample of rank `ceil(q·count)`, 0 when empty.
    /// Overestimates the exact sample by at most the bucket's relative
    /// width (< 1/32). Monotone non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        // Unreachable when count equals the bucket total (snapshot()
        // guarantees it); kept total for robustness.
        bucket_bounds(NUM_BUCKETS - 1).1
    }

    /// The samples recorded between `earlier` and `self`, as a snapshot
    /// of its own: per-bucket saturating subtraction, with `count` and
    /// `sum` re-derived so quantiles of the delta are exactly the
    /// quantiles of the samples that arrived in between. Both snapshots
    /// must come from the same (monotonically growing) histogram; a
    /// mismatched pair degrades gracefully to clamped-at-zero buckets.
    /// This is what windowed p50/p99 time series are built from.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(&now, &then)| now.saturating_sub(then))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets: buckets.into_boxed_slice(),
            count,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// The non-empty buckets as `(upper bound, cumulative count)` pairs
    /// in ascending value order — exactly the series a Prometheus
    /// histogram's `_bucket{le="..."}` samples need (the caller appends
    /// the `+Inf` bucket with the total count).
    pub fn cumulative_nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .scan(0u64, |acc, (i, &c)| {
                *acc += c;
                Some((bucket_bounds(i).1, *acc))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total_at_boundaries() {
        // Unit buckets below SUB_COUNT.
        for v in 0..SUB_COUNT as u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        // Continuity across the linear→log boundary and octave edges.
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(65), 64, "width-2 bucket at the 2^6 octave");
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        let mut prev = 0;
        for shift in 5..64 {
            for v in [(1u64 << shift) - 1, 1u64 << shift, (1u64 << shift) + 1] {
                let i = bucket_index(v);
                assert!(i >= prev, "index must be monotone at v={v}");
                prev = i;
            }
        }
    }

    #[test]
    fn bounds_partition_the_range() {
        // Consecutive buckets tile u64 without gaps or overlaps.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} must start where {} ended", i - 1);
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if i + 1 < NUM_BUCKETS {
                expect_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [1u64, 31, 32, 100, 999, 5_000, 123_456, 10_000_000_000] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            let err = (hi - v) as f64 / v as f64;
            assert!(err < 1.0 / 32.0, "v={v}: err {err}");
        }
    }

    #[test]
    fn empty_snapshot() {
        let h = LogHistogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.cumulative_nonzero().count(), 0);
    }

    #[test]
    fn quantiles_of_known_samples() {
        let h = LogHistogram::new();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 100);
        assert_eq!(s.mean(), 25.0);
        // Values below SUB_COUNT land in exact unit buckets, so the
        // nearest-rank quantiles are exact here.
        assert_eq!(s.quantile(0.25), 10);
        assert_eq!(s.quantile(0.50), 20);
        assert_eq!(s.quantile(0.75), 30);
        assert_eq!(s.quantile(1.0), 40);
        assert_eq!(s.quantile(0.0), 10, "rank clamps to the first sample");
    }

    #[test]
    fn cumulative_series_ends_at_total() {
        let h = LogHistogram::new();
        for v in [5, 5, 70, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let series: Vec<_> = s.cumulative_nonzero().collect();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (5, 2));
        assert!(series
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(series.last().unwrap().1, s.count());
    }

    #[test]
    fn merge_matches_union() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let union = LogHistogram::new();
        for v in [3u64, 77, 500] {
            a.record(v);
            union.record(v);
        }
        for v in [9u64, 77, 123_456] {
            b.record(v);
            union.record(v);
        }
        a.merge_from(&b);
        let (sa, su) = (a.snapshot(), union.snapshot());
        assert_eq!(sa.count(), su.count());
        assert_eq!(sa.sum(), su.sum());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(sa.quantile(q), su.quantile(q));
        }
    }

    #[test]
    fn delta_isolates_the_samples_in_between() {
        let h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let before = h.snapshot();
        for v in [5u64, 5, 1_000] {
            h.record(v);
        }
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 1_010);
        assert_eq!(d.quantile(0.5), 5);
        // Quantiles match a histogram that only saw the new samples.
        let fresh = LogHistogram::new();
        for v in [5u64, 5, 1_000] {
            fresh.record(v);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(d.quantile(q), fresh.snapshot().quantile(q));
        }
        // Delta against itself is empty.
        let s = h.snapshot();
        assert!(s.delta(&s).is_empty());
    }

    #[test]
    fn concurrent_recording_under_scrapes_loses_nothing() {
        // The satellite pin: scrapes are atomic reads and can never
        // block or drop concurrent recording.
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads = 4;
        let per_thread = 20_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1_000 + i % 997);
                    }
                });
            }
            // Scrape continuously while recorders run; every snapshot
            // must be internally consistent.
            let h = std::sync::Arc::clone(&h);
            s.spawn(move || {
                for _ in 0..200 {
                    let s = h.snapshot();
                    assert_eq!(
                        s.cumulative_nonzero().last().map_or(0, |(_, c)| c),
                        s.count()
                    );
                    std::hint::spin_loop();
                }
            });
        });
        assert_eq!(h.count(), threads * per_thread);
    }
}
