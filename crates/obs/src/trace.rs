//! Per-request tracing: stage-attributed spans, a bounded ring of
//! completed request traces, and a top-K slow-query log.
//!
//! A [`Span`] is minted per request (with a process-unique trace ID) and
//! threaded through the handler: each pipeline stage either times itself
//! with a [`StageTimer`] guard or adds externally measured nanoseconds
//! via [`Span::add`]. Finishing a span yields a [`RequestTrace`] — the
//! stage breakdown plus request facts — which the daemon records into a
//! [`TraceRing`] (`GET /debug/trace`) and a [`SlowLog`]
//! (`GET /debug/slow`), and whose stage times feed the stage-labeled
//! histograms on `/metrics`.
//!
//! Stage semantics (what each bucket of a request's wall time means) are
//! documented on [`Stage`]; `queue_wait` and `execute` are measured by
//! the engine workers and can overlap wall-clock-wise across chunks, so
//! stages sum to *attributable* time, not necessarily the request's
//! elapsed total.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Process-wide trace-ID mint (first issued ID is 1).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh process-unique trace ID.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The instrumented stages of one request's pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Reading the request off the socket and parsing the pair list.
    Parse = 0,
    /// Probing the result cache (0 when the cache is disabled).
    CacheProbe = 1,
    /// Rank translation, ordering and chunk gathering before dispatch.
    Prepare = 2,
    /// Longest enqueue→dequeue delay over the batch's chunks: how long
    /// admitted work sat behind the queue before a worker picked it up.
    QueueWait = 3,
    /// Summed worker execution time over the batch's chunks (cumulative
    /// busy time, so it can exceed wall clock when chunks run in
    /// parallel).
    Execute = 4,
    /// Scattering chunk answers back into input order.
    Merge = 5,
    /// Serializing and writing the response to the socket.
    Write = 6,
}

impl Stage {
    /// Number of stages (the length of per-trace stage arrays).
    pub const COUNT: usize = 7;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Parse,
        Stage::CacheProbe,
        Stage::Prepare,
        Stage::QueueWait,
        Stage::Execute,
        Stage::Merge,
        Stage::Write,
    ];

    /// The stage's label as exposed in metrics and trace JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::CacheProbe => "cache_probe",
            Stage::Prepare => "prepare",
            Stage::QueueWait => "queue_wait",
            Stage::Execute => "execute",
            Stage::Merge => "merge",
            Stage::Write => "write",
        }
    }
}

/// A live trace of one request: a trace ID, a start instant and
/// per-stage accumulated nanoseconds.
#[derive(Debug)]
pub struct Span {
    id: u64,
    start: Instant,
    stage_ns: [u64; Stage::COUNT],
}

impl Default for Span {
    fn default() -> Self {
        Self::new()
    }
}

impl Span {
    /// Starts a span now, minting a fresh trace ID.
    pub fn new() -> Self {
        Span {
            id: next_trace_id(),
            start: Instant::now(),
            stage_ns: [0; Stage::COUNT],
        }
    }

    /// Starts a span now under a caller-supplied trace ID (trace-context
    /// propagation: a client or upstream hop already minted the ID and
    /// every hop of the request should share it).
    pub fn with_id(id: u64) -> Self {
        Span {
            id,
            start: Instant::now(),
            stage_ns: [0; Stage::COUNT],
        }
    }

    /// The span's trace ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Replaces the span's trace ID (propagation when the external ID is
    /// only known after the request is parsed — the span keeps its start
    /// instant and accumulated stages).
    pub fn set_id(&mut self, id: u64) {
        self.id = id;
    }

    /// Adds externally measured nanoseconds to a stage (for stages whose
    /// duration is measured elsewhere, e.g. by engine workers).
    #[inline]
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.stage_ns[stage as usize] += ns;
    }

    /// Replaces a stage's accumulated time with the maximum of the
    /// current value and `ns` (for [`Stage::QueueWait`], where the
    /// longest chunk delay is the meaningful figure).
    #[inline]
    pub fn add_max(&mut self, stage: Stage, ns: u64) {
        let slot = &mut self.stage_ns[stage as usize];
        *slot = (*slot).max(ns);
    }

    /// Times `f` and attributes its duration to `stage`.
    #[inline]
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(stage, t0.elapsed().as_nanos() as u64);
        out
    }

    /// A guard that attributes its lifetime to `stage` when dropped.
    pub fn timer(&mut self, stage: Stage) -> StageTimer<'_> {
        StageTimer {
            span: self,
            stage,
            t0: Instant::now(),
        }
    }

    /// The accumulated per-stage nanoseconds.
    pub fn stage_ns(&self) -> &[u64; Stage::COUNT] {
        &self.stage_ns
    }

    /// Nanoseconds since the span started.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Completes the span into an immutable [`RequestTrace`], stamping
    /// total latency and wall-clock completion time.
    pub fn finish(self, kind: &'static str, status: &'static str, items: u64) -> RequestTrace {
        RequestTrace {
            id: self.id,
            kind,
            status,
            items,
            total_ns: self.start.elapsed().as_nanos() as u64,
            stage_ns: self.stage_ns,
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
        }
    }
}

/// RAII stage timer: attributes its lifetime to one stage of a [`Span`].
pub struct StageTimer<'a> {
    span: &'a mut Span,
    stage: Stage,
    t0: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.span
            .add(self.stage, self.t0.elapsed().as_nanos() as u64);
    }
}

/// One completed, immutable request trace.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Process-unique trace ID.
    pub id: u64,
    /// Request kind: `"query"` or `"insert"`.
    pub kind: &'static str,
    /// Outcome: `"ok"`, `"rejected"`, `"bad_request"` or `"conflict"`.
    pub status: &'static str,
    /// Pairs (queries) or edges (inserts) in the request.
    pub items: u64,
    /// End-to-end service latency, nanoseconds.
    pub total_ns: u64,
    /// Attributed nanoseconds per [`Stage`] (indexed by `Stage as
    /// usize`).
    pub stage_ns: [u64; Stage::COUNT],
    /// Unix milliseconds at completion.
    pub unix_ms: u64,
}

impl RequestTrace {
    /// The trace as one JSON object. Every stage is emitted (zeros
    /// included) so consumers can rely on a fixed shape.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "{{\"trace_id\":{},\"kind\":\"{}\",\"status\":\"{}\",\"items\":{},\
             \"total_us\":{:.1},\"unix_ms\":{},\"stages_us\":{{",
            self.id,
            self.kind,
            self.status,
            self.items,
            self.total_ns as f64 / 1e3,
            self.unix_ms,
        );
        for (k, stage) in Stage::ALL.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{:.1}",
                stage.name(),
                self.stage_ns[*stage as usize] as f64 / 1e3
            );
        }
        s.push_str("}}");
        s
    }
}

/// A bounded ring of the most recently completed request traces
/// (`GET /debug/trace`). Pushing past capacity evicts the oldest.
#[derive(Debug)]
pub struct TraceRing {
    buf: Mutex<VecDeque<RequestTrace>>,
    capacity: usize,
}

impl TraceRing {
    /// A ring holding at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            buf: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
        }
    }

    /// Maximum traces held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records a completed trace, evicting the oldest when full.
    pub fn push(&self, t: RequestTrace) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(t);
    }

    /// The `n` most recent traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<RequestTrace> {
        let buf = self.buf.lock();
        buf.iter().rev().take(n).cloned().collect()
    }

    /// Traces currently held.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether no traces were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

/// A top-K slow-query log (`GET /debug/slow`): keeps the K slowest
/// traces seen, sorted slowest first.
///
/// The common case — a request faster than the current K-th slowest —
/// is a single `Relaxed` atomic load; only genuinely slow requests take
/// the lock.
#[derive(Debug)]
pub struct SlowLog {
    /// Slowest-first, at most `k` entries.
    entries: Mutex<Vec<RequestTrace>>,
    k: usize,
    /// `total_ns` of the K-th slowest entry once the log is full; 0
    /// before that. Requests at or below the floor skip the lock.
    floor: AtomicU64,
}

impl SlowLog {
    /// A log keeping the `k` slowest traces (minimum 1).
    pub fn new(k: usize) -> Self {
        SlowLog {
            entries: Mutex::new(Vec::with_capacity(k.max(1))),
            k: k.max(1),
            floor: AtomicU64::new(0),
        }
    }

    /// Maximum traces kept.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Offers a completed trace; it is kept only if it ranks among the K
    /// slowest seen so far.
    pub fn offer(&self, t: RequestTrace) {
        // Fast path: the log is full and this request is not slower
        // than its current floor.
        if t.total_ns <= self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock();
        // Re-check under the lock (the floor may have risen).
        if entries.len() == self.k {
            if t.total_ns <= entries[self.k - 1].total_ns {
                return;
            }
            entries.pop();
        }
        let at = entries.partition_point(|e| e.total_ns >= t.total_ns);
        entries.insert(at, t);
        if entries.len() == self.k {
            self.floor
                .store(entries[self.k - 1].total_ns, Ordering::Relaxed);
        }
    }

    /// The `n` slowest traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<RequestTrace> {
        let entries = self.entries.lock();
        entries.iter().take(n).cloned().collect()
    }

    /// Traces currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether no traces were kept yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total_ns: u64) -> RequestTrace {
        RequestTrace {
            id,
            kind: "query",
            status: "ok",
            items: 1,
            total_ns,
            stage_ns: [0; Stage::COUNT],
            unix_ms: 0,
        }
    }

    #[test]
    fn trace_ids_are_unique_and_increasing() {
        let a = next_trace_id();
        let b = next_trace_id();
        let c = Span::new().id();
        assert!(a < b && b < c);
    }

    #[test]
    fn spans_carry_propagated_trace_ids() {
        let span = Span::with_id(0xDEAD_BEEF);
        assert_eq!(span.id(), 0xDEAD_BEEF);
        let trace = span.finish("query", "ok", 1);
        assert_eq!(trace.id, 0xDEAD_BEEF);
        let mut span = Span::new();
        span.add(Stage::Parse, 10);
        span.set_id(42);
        assert_eq!(span.id(), 42);
        let trace = span.finish("query", "ok", 1);
        assert_eq!(trace.id, 42);
        assert_eq!(trace.stage_ns[Stage::Parse as usize], 10);
    }

    #[test]
    fn span_accumulates_and_finishes() {
        let mut span = Span::new();
        span.add(Stage::Parse, 100);
        span.add(Stage::Parse, 50);
        span.add_max(Stage::QueueWait, 30);
        span.add_max(Stage::QueueWait, 20);
        let x = span.time(Stage::Merge, || 42);
        assert_eq!(x, 42);
        {
            let _t = span.timer(Stage::Write);
        }
        let t = span.finish("query", "ok", 7);
        assert_eq!(t.stage_ns[Stage::Parse as usize], 150);
        assert_eq!(t.stage_ns[Stage::QueueWait as usize], 30, "max, not sum");
        assert_eq!(t.stage_ns[Stage::CacheProbe as usize], 0);
        assert_eq!(t.items, 7);
        assert!(t.total_ns >= t.stage_ns[Stage::Merge as usize]);
        let json = t.to_json();
        for stage in Stage::ALL {
            assert!(json.contains(&format!("\"{}\":", stage.name())), "{json}");
        }
        assert!(json.contains(&format!("\"trace_id\":{}", t.id)));
        assert!(json.contains("\"status\":\"ok\""));
    }

    #[test]
    fn ring_evicts_oldest_and_returns_newest_first() {
        let ring = TraceRing::new(3);
        assert!(ring.is_empty());
        for id in 1..=5 {
            ring.push(trace(id, id * 100));
        }
        assert_eq!(ring.len(), 3);
        let recent: Vec<u64> = ring.recent(10).iter().map(|t| t.id).collect();
        assert_eq!(recent, vec![5, 4, 3], "newest first, 1 and 2 evicted");
        let top1: Vec<u64> = ring.recent(1).iter().map(|t| t.id).collect();
        assert_eq!(top1, vec![5]);
    }

    #[test]
    fn slow_log_keeps_top_k_sorted() {
        let log = SlowLog::new(3);
        assert!(log.is_empty());
        for (id, ns) in [(1, 500), (2, 100), (3, 900), (4, 50), (5, 700)] {
            log.offer(trace(id, ns));
        }
        let slowest: Vec<(u64, u64)> = log.slowest(10).iter().map(|t| (t.id, t.total_ns)).collect();
        assert_eq!(slowest, vec![(3, 900), (5, 700), (1, 500)]);
        // A new slowest entry displaces the tail.
        log.offer(trace(6, 800));
        let slowest: Vec<u64> = log.slowest(10).iter().map(|t| t.id).collect();
        assert_eq!(slowest, vec![3, 6, 5]);
        // At-floor offers are rejected without changing the log.
        log.offer(trace(7, 700));
        assert_eq!(log.len(), 3);
        let slowest: Vec<u64> = log.slowest(2).iter().map(|t| t.id).collect();
        assert_eq!(slowest, vec![3, 6]);
    }

    #[test]
    fn slow_log_floor_fast_path_matches_slow_path() {
        // Concurrent offers must preserve the top-K invariant: after
        // offering 0..N in any interleaving, the log holds the N-K
        // largest.
        let log = std::sync::Arc::new(SlowLog::new(8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let log = std::sync::Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        // Interleaved values across threads.
                        log.offer(trace(t * 10_000 + i, i * 4 + t));
                    }
                });
            }
        });
        let slowest: Vec<u64> = log.slowest(8).iter().map(|t| t.total_ns).collect();
        // Global max is 999*4+3 = 3999; the top 8 distinct values are
        // 3999, 3998, 3997, ... (each i,t combination is distinct).
        let expect: Vec<u64> = (0..8).map(|k| 3999 - k).collect();
        assert_eq!(slowest, expect);
    }
}
