//! Offline stand-in for the [`serde`](https://docs.rs/serde) crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and stats
//! types for forward compatibility, but every byte that actually crosses a
//! boundary goes through the hand-rolled `bytes`-based snapshot formats.
//! This shim therefore provides the two trait names plus no-op derive
//! macros (see `shims/serde_derive`) so the annotations compile; nothing
//! bounds on the traits today. Swapping the workspace dependency back to
//! real serde requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Mirror of `serde::de` (namespace only).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` (namespace only).
pub mod ser {
    pub use crate::Serialize;
}
