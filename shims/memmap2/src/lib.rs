//! In-tree shim for the `memmap2` crate: read-only file memory mappings.
//!
//! The build environment has no crates.io access, so this crate provides the
//! minimal slice of the real `memmap2` API that this workspace uses: mapping
//! an entire file read-only with [`Mmap::map`] and dereferencing the mapping
//! as a `&[u8]`. The mapping is created with `PROT_READ | MAP_PRIVATE`
//! directly via the `mmap(2)` / `munmap(2)` syscall wrappers that the
//! platform libc exports (std already links libc on unix targets, so the
//! `extern "C"` declarations below resolve without any extra crate).
//!
//! Semantics match the real crate where it matters to us:
//!
//! * mappings are page-aligned by construction (the kernel guarantees it);
//! * a zero-length file cannot be mapped (`mmap` would return `EINVAL`), so
//!   [`Mmap::map`] returns an error for it, exactly like upstream;
//! * the mapping is unmapped on [`Drop`];
//! * `Mmap` is `Send + Sync` — the memory is never written through this
//!   handle and `MAP_PRIVATE` isolates it from other processes' writes at
//!   page granularity.
//!
//! Unsupported (non-unix) targets get a stub that always returns an
//! `Unsupported` error, which callers treat as "fall back to the copying
//! loader". Swapping the workspace dependency back to the registry version
//! of `memmap2` restores the full crate.

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::{c_int, c_long};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// An immutable, read-only memory-mapped view of an entire file.
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is read-only (`PROT_READ`) and private (`MAP_PRIVATE`);
// no interior mutability is exposed, so sharing across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole `file` read-only.
    ///
    /// # Safety
    ///
    /// As with the real `memmap2` crate, the caller must ensure the
    /// underlying file is not truncated or rewritten while the mapping is
    /// alive; doing so can change the mapped bytes or raise `SIGBUS`.
    #[cfg(unix)]
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let meta = file.metadata()?;
        let len64 = meta.len();
        let len = usize::try_from(len64)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            // mmap(2) rejects zero-length mappings with EINVAL; surface the
            // same `InvalidInput` error the real crate produces.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "memory map must have a non-zero length",
            ));
        }
        let ptr = sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        );
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *mut u8,
            len,
        })
    }

    /// Stub for non-unix targets: always fails with `Unsupported`, which the
    /// pspc loaders treat as "use the copying loader instead".
    #[cfg(not(unix))]
    pub unsafe fn map(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is not supported on this platform (memmap2 shim)",
        ))
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mapping is empty (never the case for a live mapping).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes,
        // valid until `Drop` runs.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.deref()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: `ptr`/`len` came from a successful mmap call and are
        // unmapped exactly once.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("memmap2-shim-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        // Mappings are page-aligned, which the zero-copy loader relies on.
        assert_eq!(map.ptr as usize % 4096, 0);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_errors() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let err = unsafe { Mmap::map(&file) }.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_across_threads() {
        let path = temp_path("threads");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[7u8; 4096])
            .unwrap();
        let file = File::open(&path).unwrap();
        let map = std::sync::Arc::new(unsafe { Mmap::map(&file) }.unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
