//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness. Provides the API subset the workspace's benches
//! use (`Criterion::bench_function`, `benchmark_group` with
//! `sample_size`, `Bencher::iter`/`iter_batched`, the `criterion_group!`
//! / `criterion_main!` macros and `black_box`) and reports a simple
//! mean wall-clock time per iteration — no statistics, outlier
//! rejection, or HTML reports. `cargo bench` therefore runs and prints
//! usable numbers, while absolute rigor waits on the real crate.

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by this shim's timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Measures one benchmark routine.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup, then timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples;
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:40} (no iterations)");
            return;
        }
        let per = self.total.as_nanos() / self.iters as u128;
        println!("{id:40} {per:>12} ns/iter ({} iters)", self.iters);
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(id);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        b.report(id);
        self
    }

    /// Ends the group (explicit for API parity; dropping works too).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        c.bench_function("demo_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("demo_group");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn group_runs() {
        benches();
    }
}
