//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Provides the subset the workspace's binary snapshot formats use:
//! [`Bytes`] (cheaply cloneable, sliceable, consumable view),
//! [`BytesMut`] (growable write buffer), and the [`Buf`] / [`BufMut`]
//! traits with the little-endian get/put helpers. Semantics match the
//! real crate where it matters for correctness: `Buf::get_*` panic on
//! underflow (callers are expected to check [`Buf::remaining`] first,
//! which is exactly what the snapshot readers do for their error paths),
//! `advance` panics past the end, and `slice` panics on out-of-range.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read-side cursor operations over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte. Panics on underflow.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`. Panics on underflow.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`. Panics on underflow.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`. Panics on underflow.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes out. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side append operations over a growable byte sink.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Cheaply cloneable immutable byte buffer (an `Arc`'d vector plus a
/// window, advanced in place by [`Buf`] reads).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Sub-view over `range` (relative to this view). Panics if the range
    /// is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance({cnt}) past end ({})",
            self.len()
        );
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_bytes(self, f)
    }
}

/// Growable byte buffer for building snapshots.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_bytes(self, f)
    }
}

/// Shared Debug body for the two buffer types: hex dump, elided when long.
fn fmt_bytes(s: &[u8], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "b\"")?;
    for &b in s.iter().take(32) {
        write!(f, "\\x{b:02x}")?;
    }
    if s.len() > 32 {
        write!(f, "…(+{} bytes)", s.len() - 32)?;
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR!");
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        let mut r = b.freeze();
        assert_eq!(&r[..4], b"HDR!");
        r.advance(4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_windows() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.slice(..).len(), 6);
    }

    #[test]
    #[should_panic]
    fn get_underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        b.advance(3);
    }
}
