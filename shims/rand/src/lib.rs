//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment for this repository has no crates.io access, so
//! this shim reimplements exactly the 0.8-era API surface the workspace
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], [`rngs::StdRng`]
//! and [`seq::SliceRandom::shuffle`]. All generators are deterministic
//! xoshiro256++ instances seeded through SplitMix64, so every seeded use
//! in the workspace is reproducible across runs and platforms.
//!
//! It is NOT a cryptographic or statistically audited RNG — it exists so
//! seeded graph generators and tests behave deterministically.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut s = [0u64; 4];
        let mut z = seed;
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(z);
        }
        // All-zero state would be a fixed point; splitmix64 never produces
        // four zeros from distinct inputs, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small fast generator (deterministic xoshiro256++ here).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The default generator (same deterministic core in this shim).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Domain-separate from SmallRng so the two families differ.
            StdRng(Xoshiro256::from_u64(state ^ 0x5DEE_CE66_D013_0CF5))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style multiply-shift; the tiny modulo bias of a
                // 64-bit draw over a <=64-bit span is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                // Wrapping arithmetic: signed starts sign-extend when cast
                // to u128, so a plain subtraction would underflow.
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T` (for floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u32> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen_range(0..1000u32)).collect()
        };
        let b: Vec<u32> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen_range(0..1000u32)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..8).map(|_| r.gen_range(0..1000u32)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0..=5u32);
            assert!(y <= 5);
            let z = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&z));
            let w = r.gen_range(-10..10i64);
            assert!((-10..10).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(4));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
