//! Offline stand-in for the [`rayon`](https://docs.rs/rayon) crate —
//! **genuinely parallel** for the hot combinators.
//!
//! The build environment has no crates.io access, so this shim provides
//! the API subset the workspace uses. Unlike the original bring-up shim
//! (which executed everything sequentially), the drivers that carry the
//! expensive per-item closures — `map(..).collect()`, `map(..).sum()`,
//! `for_each`, and [`join`] — now fan work out over OS threads via
//! `std::thread::scope`:
//!
//! * sources and cheap combinators (`zip`, `enumerate`, `par_chunks_mut`,
//!   `filter`, `flat_map`) compose a serial iterator that merely *names*
//!   the items — references, index ranges, disjoint `&mut` chunks;
//! * [`Par::map`] keeps its closure separate (in a [`ParMap`]) instead of
//!   fusing it into the iterator, so the terminal driver can apply it in
//!   worker threads;
//! * drivers materialize the (cheap) item list, then dispense chunks of it
//!   to workers through a mutex-guarded queue — dynamic load balancing in
//!   the spirit of rayon's work stealing — and reassemble results in input
//!   order, so `collect` remains order-preserving and deterministic.
//!
//! Thread count: [`ThreadPool::install`] sets a thread-local override for
//! the duration of the closure (this is how `PspcConfig::threads` takes
//! effect); otherwise `std::thread::available_parallelism` is used. With 1
//! thread — or when a batch is smaller than the `with_min_len` hint —
//! execution stays on the calling thread with zero spawns, so unit tests
//! on small inputs pay no overhead.
//!
//! `par_sort_unstable`/`par_sort_unstable_by`/`par_sort_unstable_by_key`
//! are parallel too: the slice is cut into one run per thread, the runs
//! are sorted concurrently (disjoint `&mut` chunks over scoped threads),
//! and a k-way merge computes the output permutation which is then
//! applied in place by cycle-following swaps — no `T: Clone` bound and
//! no unsafe. Below a size cutoff (or under a 1-thread budget) they
//! defer to std's pdqsort.
//!
//! Still sequential: closures passed to `filter`/`flat_map` (cheap at
//! every call site). Nested parallelism inside a worker thread runs
//! sequentially rather than oversubscribing. Swapping the workspace
//! dependency back to the real crate remains a one-line change: call
//! sites keep rayon's `Send`/`Sync` obligations.

use std::cell::Cell;
use std::sync::{Mutex, MutexGuard};

// ---------------------------------------------------------------- executor

thread_local! {
    /// Thread count forced by an enclosing [`ThreadPool::install`].
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Thread count parallel drivers will use right now.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(available_threads)
}

/// Non-poisoning lock: a panicking worker must not turn into a confusing
/// secondary panic in its siblings (the scope re-raises the original).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Applies `f` to every item, in input order, fanning out over scoped
/// threads when the batch and thread budget justify it. The returned
/// vector is index-aligned with `items`.
fn par_apply<T, O, F>(items: Vec<T>, f: &F, min_len: usize) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let threads = current_num_threads();
    // ~4 chunks per worker gives the dispenser something to balance with,
    // while `with_min_len` keeps tiny workloads serial.
    let chunk = (n.div_ceil(threads.max(1) * 4)).max(min_len).max(1);
    let workers = threads.min(n.div_ceil(chunk.max(1)).max(1));
    if workers <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    // Chunk dispenser + out-of-order part list (Kun-peng-style shared
    // buffers): workers pull the next chunk, compute, push `(start, out)`.
    let queue = Mutex::new((0usize, items.into_iter()));
    let parts: Mutex<Vec<(usize, Vec<O>)>> = Mutex::new(Vec::with_capacity(n.div_ceil(chunk)));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                // Workers get a serial budget: nested parallel drivers
                // inside `f` must not oversubscribe the machine.
                POOL_OVERRIDE.with(|c| c.set(Some(1)));
                loop {
                    let (start, batch) = {
                        let mut q = lock(&queue);
                        if q.1.len() == 0 {
                            return;
                        }
                        let start = q.0;
                        let batch: Vec<T> = q.1.by_ref().take(chunk).collect();
                        q.0 += batch.len();
                        (start, batch)
                    };
                    let out: Vec<O> = batch.into_iter().map(f).collect();
                    lock(&parts).push((start, out));
                }
            });
        }
    });
    let mut parts = parts.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut p) in parts {
        out.append(&mut p);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// A parallel iterator over a cheap serial *source* (refs, ranges,
/// disjoint chunks). The expensive closure lives in [`ParMap`].
pub struct Par<I> {
    iter: I,
    min_len: usize,
}

impl<I: Iterator> Par<I> {
    fn new(iter: I) -> Self {
        Par { iter, min_len: 1 }
    }

    /// Maps each item through `f`. The closure is kept out of the iterator
    /// so terminal drivers can apply it in parallel.
    pub fn map<O, F: Fn(I::Item) -> O>(self, f: F) -> ParMap<I, F> {
        ParMap {
            base: self.iter,
            f,
            min_len: self.min_len,
        }
    }

    /// Zips with anything convertible to a parallel iterator.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::Iter>> {
        Par {
            iter: self.iter.zip(other.into_par_iter().iter),
            min_len: self.min_len,
        }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par {
            iter: self.iter.enumerate(),
            min_len: self.min_len,
        }
    }

    /// Minimum items per work chunk (also the serial-execution cutoff).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Splitting hint — a no-op here.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Keeps items for which `f` returns `true` (applied serially while
    /// materializing the source — cheap at every call site).
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par {
            iter: self.iter.filter(f),
            min_len: self.min_len,
        }
    }

    /// Maps and flattens (serial composition).
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, O, F>> {
        Par {
            iter: self.iter.flat_map(f),
            min_len: self.min_len,
        }
    }

    /// Runs `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let items: Vec<I::Item> = self.iter.collect();
        par_apply(items, &f, self.min_len);
    }

    /// Sums the items (source items are cheap; summing stays serial).
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.iter.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.iter.count()
    }

    /// Largest item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.iter.max()
    }

    /// Collects into any [`FromIterator`] collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.iter.collect()
    }

    /// Folds sequentially then reduces (single sequential fold here).
    pub fn reduce<ID, F>(self, identity: ID, f: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: Fn(I::Item, I::Item) -> I::Item,
    {
        self.iter.fold(identity(), f)
    }
}

/// A mapped parallel iterator: cheap source + the hot closure, applied in
/// worker threads by every terminal driver.
pub struct ParMap<I, F> {
    base: I,
    f: F,
    min_len: usize,
}

impl<I, O, F> ParMap<I, F>
where
    I: Iterator,
    I::Item: Send,
    O: Send,
    F: Fn(I::Item) -> O + Sync,
{
    /// Minimum items per work chunk (also the serial-execution cutoff).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Composes a second map without losing parallel execution.
    pub fn map<O2, G: Fn(O) -> O2>(self, g: G) -> ParMap<I, impl Fn(I::Item) -> O2> {
        let f = self.f;
        ParMap {
            base: self.base,
            f: move |t| g(f(t)),
            min_len: self.min_len,
        }
    }

    fn run(self) -> Vec<O> {
        let items: Vec<I::Item> = self.base.collect();
        par_apply(items, &self.f, self.min_len)
    }

    /// Collects mapped items, in input order, computed in parallel.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Runs the closure on every item for its side effects.
    pub fn for_each(self)
    where
        F: Fn(I::Item) -> O,
    {
        self.run();
    }

    /// Sums the mapped items (the map runs in parallel).
    pub fn sum<S: std::iter::Sum<O>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Number of mapped items.
    pub fn count(self) -> usize {
        self.run().len()
    }

    /// Largest mapped item.
    pub fn max(self) -> Option<O>
    where
        O: Ord,
    {
        self.run().into_iter().max()
    }

    /// Parallel map, then a sequential reduction of the results.
    pub fn reduce<ID, G>(self, identity: ID, g: G) -> O
    where
        ID: Fn() -> O,
        G: Fn(O, O) -> O,
    {
        self.run().into_iter().fold(identity(), g)
    }
}

/// Conversion into a [`Par`] iterator (mirrors rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// Underlying serial iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Performs the conversion.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<I: Iterator> IntoParallelIterator for Par<I> {
    type Iter = I;
    type Item = I::Item;
    fn into_par_iter(self) -> Par<I> {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par::new(self.into_iter())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par::new(self.iter())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par::new(self.iter())
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par::new(self.iter_mut())
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par::new(self.iter_mut())
    }
}

macro_rules! impl_into_par_for_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = std::ops::Range<$t>;
            type Item = $t;
            fn into_par_iter(self) -> Par<Self::Iter> {
                Par::new(self)
            }
        }
    )*};
}
impl_into_par_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `.par_iter()` on `&self` (mirrors rayon).
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a shared reference).
    type Item: 'data;
    /// Underlying serial iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'data self) -> Par<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Par<Self::Iter> {
        self.into_par_iter()
    }
}

/// `.par_iter_mut()` on `&mut self` (mirrors rayon).
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type (an exclusive reference).
    type Item: 'data;
    /// Underlying serial iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoParallelIterator,
{
    type Item = <&'data mut C as IntoParallelIterator>::Item;
    type Iter = <&'data mut C as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
        self.into_par_iter()
    }
}

/// Parallel operations on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Chunked iteration.
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par::new(self.chunks(chunk_size))
    }
}

/// Sequential cutoff for the parallel sorts: below this, std's pdqsort
/// wins outright and spawning threads is pure overhead.
const PAR_SORT_MIN_LEN: usize = 4096;

/// Parallel unstable sort: cut into one run per thread, sort runs
/// concurrently (disjoint `&mut` chunks), k-way merge into a permutation,
/// apply it in place with cycle-following swaps.
fn par_sort_by_impl<T, F>(v: &mut [T], compare: &F)
where
    T: Send,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    let n = v.len();
    let threads = current_num_threads();
    if threads <= 1 || n < PAR_SORT_MIN_LEN {
        v.sort_unstable_by(compare);
        return;
    }
    let runs = threads.min(n.div_ceil(PAR_SORT_MIN_LEN / 2)).max(2);
    let run_len = n.div_ceil(runs);

    // Phase 1: sort each run in its own scoped thread. `chunks_mut` hands
    // out disjoint borrows, so this is race-free by construction.
    std::thread::scope(|s| {
        for run in v.chunks_mut(run_len) {
            s.spawn(move || {
                POOL_OVERRIDE.with(|c| c.set(Some(1)));
                run.sort_unstable_by(compare);
            });
        }
    });

    // Phase 2: k-way merge of the sorted runs into an output permutation
    // (`perm[out] = src`). k is at most the thread count, so a linear
    // scan over the run heads per output element is cheap.
    let mut cursors: Vec<(usize, usize)> = (0..runs)
        .map(|r| (r * run_len, ((r + 1) * run_len).min(n)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    let mut perm: Vec<usize> = Vec::with_capacity(n);
    while !cursors.is_empty() {
        let mut best = 0;
        for c in 1..cursors.len() {
            if compare(&v[cursors[c].0], &v[cursors[best].0]) == std::cmp::Ordering::Less {
                best = c;
            }
        }
        perm.push(cursors[best].0);
        cursors[best].0 += 1;
        if cursors[best].0 == cursors[best].1 {
            cursors.swap_remove(best);
        }
    }
    debug_assert_eq!(perm.len(), n);

    // Phase 3: apply the permutation in place. Follow each cycle with
    // swaps, consuming `perm` (usize::MAX marks visited positions).
    for start in 0..n {
        if perm[start] == usize::MAX || perm[start] == start {
            continue;
        }
        let mut cur = start;
        loop {
            let src = perm[cur];
            perm[cur] = usize::MAX;
            if src == start {
                break;
            }
            v.swap(cur, src);
            cur = src;
        }
    }
}

/// Parallel operations on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Chunked mutable iteration — chunks are disjoint, so a parallel
    /// `for_each` over them is race-free by construction.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;

    /// Parallel unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Parallel unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;

    /// Parallel unstable sort by comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par::new(self.chunks_mut(chunk_size))
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_by_impl(self, &T::cmp)
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_sort_by_impl(self, &|a, b| f(a).cmp(&f(b)))
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        par_sort_by_impl(self, &compare)
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` worker threads (0 = all available).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible here.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            available_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A thread-count context. Worker threads are not persistent (they are
/// scoped per driver call), but `install` really does control how many
/// threads the drivers inside `op` fan out to.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect for every
    /// parallel driver on the current thread (restored afterwards, also on
    /// panic).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_OVERRIDE.with(|c| c.replace(Some(self.threads)));
        let _restore = Restore(prev);
        op()
    }

    /// Configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Runs both closures, `b` on a scoped thread while `a` runs on the
/// caller, and returns both results. Falls back to sequential execution
/// under a 1-thread budget. A panic in either closure propagates.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            // Spawned side gets a serial budget (no oversubscription from
            // nested drivers); the caller side keeps its own.
            POOL_OVERRIDE.with(|c| c.set(Some(1)));
            b()
        });
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn map_zip_sum_collect() {
        let a = vec![1u64, 2, 3];
        let mut b = vec![10u64, 20, 30];
        let s: u64 = a
            .par_iter()
            .zip(b.par_iter_mut())
            .map(|(x, y)| *x + *y)
            .sum();
        assert_eq!(s, 66);
        let v: Vec<u64> = (0..5u64).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn sort_and_chunks() {
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable_by_key(|&x| x);
        assert_eq!(v, vec![1, 2, 3]);
        let mut w = vec![0u32; 6];
        w.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(w, vec![0, 0, 1, 1, 2, 2]);
    }

    /// Deterministic xorshift stream for the sort tests.
    fn xorshift_vec(n: usize, mut state: u64) -> Vec<u64> {
        state |= 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    #[test]
    fn par_sort_unstable_matches_std_on_random_inputs() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        // Sizes straddling the sequential cutoff, plus duplicates-heavy
        // and pre-sorted/reversed adversaries.
        for (n, seed) in [(0, 1), (1, 2), (1000, 3), (4096, 4), (50_000, 5)] {
            let mut a = xorshift_vec(n, seed);
            let mut b = a.clone();
            pool.install(|| a.par_sort_unstable());
            b.sort_unstable();
            assert_eq!(a, b, "n={n}");
        }
        let mut dups: Vec<u64> = xorshift_vec(30_000, 9).iter().map(|x| x % 17).collect();
        let mut expect = dups.clone();
        pool.install(|| dups.par_sort_unstable());
        expect.sort_unstable();
        assert_eq!(dups, expect);
        let mut rev: Vec<u64> = (0..20_000u64).rev().collect();
        pool.install(|| rev.par_sort_unstable());
        assert!(rev.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn par_sort_by_key_and_by_comparator_match_std() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        // Unique keys, so by-key output is fully determined and must be
        // identical to std's.
        let mut a: Vec<(u64, u64)> = xorshift_vec(40_000, 11)
            .into_iter()
            .enumerate()
            .map(|(i, x)| (x ^ i as u64, i as u64))
            .collect();
        let mut b = a.clone();
        pool.install(|| a.par_sort_unstable_by_key(|&(k, _)| k));
        b.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(a, b);

        let mut c = xorshift_vec(40_000, 13);
        let mut d = c.clone();
        pool.install(|| c.par_sort_unstable_by(|x, y| y.cmp(x)));
        d.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(c, d);
    }

    #[test]
    fn pool_install_runs() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 42), 42);
        assert_eq!(pool.current_num_threads(), 4);
        // The override is scoped to the closure.
        pool.install(|| assert_eq!(super::current_num_threads(), 4));
    }

    #[test]
    fn collect_preserves_input_order_under_parallelism() {
        // Force many small chunks across 4 workers; order must survive.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let v: Vec<usize> = pool.install(|| {
            (0..10_000usize)
                .into_par_iter()
                .map(|i| {
                    if i % 1000 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                    i * 2
                })
                .collect()
        });
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn map_drivers_really_fan_out() {
        // With a forced 4-thread budget and sleepy items, at least two
        // distinct OS threads must participate (the sleeps make a single
        // worker draining the queue implausible even on one core).
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 2 {
            eprintln!("skipping fan-out assertion: single-core machine");
            return;
        }
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<u32> = pool.install(|| {
            (0..16u32)
                .into_par_iter()
                .with_min_len(1)
                .map(|i| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    i
                })
                .collect()
        });
        assert_eq!(v, (0..16).collect::<Vec<_>>());
        assert!(
            seen.lock().unwrap().len() >= 2,
            "expected at least 2 worker threads"
        );
    }

    #[test]
    fn for_each_writes_disjoint_chunks_in_parallel() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let mut w = vec![0u32; 4096];
        pool.install(|| {
            w.par_chunks_mut(64)
                .enumerate()
                .for_each(|(i, c)| c.fill(i as u32));
        });
        for (i, c) in w.chunks(64).enumerate() {
            assert!(c.iter().all(|&x| x == i as u32));
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let r = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0..64usize)
                    .into_par_iter()
                    .with_min_len(1)
                    .map(|i| {
                        if i == 13 {
                            panic!("boom");
                        }
                        i
                    })
                    .collect::<Vec<_>>()
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_panic_propagates() {
        let r = std::panic::catch_unwind(|| super::join(|| 1, || -> u32 { panic!("right side") }));
        assert!(r.is_err());
    }

    #[test]
    fn min_len_keeps_small_batches_serial() {
        // A batch under min_len must not spawn: observable via thread id.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let main_id = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..8u32)
                .into_par_iter()
                .with_min_len(256)
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn nested_drivers_in_workers_run_serial() {
        // Workers carry a 1-thread budget, so a nested driver inside the
        // mapped closure must not fan out again.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let counts: Vec<usize> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .with_min_len(1)
                .map(|_| super::current_num_threads())
                .collect()
        });
        assert!(counts.iter().all(|&c| c == 1), "got {counts:?}");
    }

    #[test]
    fn join_spawned_side_has_serial_budget() {
        let (_, nb) = super::join(|| 0, super::current_num_threads);
        assert_eq!(nb, 1);
    }

    #[test]
    fn sum_over_parmap_is_parallel_and_correct() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let s: u64 = pool.install(|| (0..100_000u64).into_par_iter().map(|x| x % 7).sum());
        let expect: u64 = (0..100_000u64).map(|x| x % 7).sum();
        assert_eq!(s, expect);
    }

    #[test]
    fn composed_map_still_parallel_and_ordered() {
        let v: Vec<u64> = (0..1000u64)
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x * 2)
            .collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i as u64 + 1) * 2));
    }
}
