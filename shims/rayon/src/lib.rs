//! Offline stand-in for the [`rayon`](https://docs.rs/rayon) crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the API subset the workspace uses (`par_iter`, `par_iter_mut`,
//! `into_par_iter`, `zip`/`map`/`sum`/`collect`/`for_each`,
//! `par_sort_unstable_by_key`, `par_chunks_mut`, `ThreadPoolBuilder`,
//! `ThreadPool::install`) with **sequential** execution. Call sites keep
//! rayon's stricter `Send`/`Sync` obligations satisfied, so swapping the
//! workspace dependency back to the real crate re-enables parallelism
//! with no source changes. Determinism is unaffected: rayon's semantics
//! for these combinators are order-preserving.

/// A "parallel" iterator — a thin wrapper over a serial [`Iterator`].
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    /// Maps each item through `f`.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Zips with anything convertible to a parallel iterator.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::Iter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Splitting hint — a no-op for sequential execution.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Splitting hint — a no-op for sequential execution.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Keeps items for which `f` returns `true`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    /// Maps and flattens.
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, O, F>> {
        Par(self.0.flat_map(f))
    }

    /// Runs `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Largest item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Collects into any [`FromIterator`] collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Folds sequentially then reduces (single sequential fold here).
    pub fn reduce<ID, F>(self, identity: ID, f: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), f)
    }
}

/// Conversion into a [`Par`] iterator (mirrors rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// Underlying serial iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Performs the conversion.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<I: Iterator> IntoParallelIterator for Par<I> {
    type Iter = I;
    type Item = I::Item;
    fn into_par_iter(self) -> Par<I> {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

macro_rules! impl_into_par_for_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = std::ops::Range<$t>;
            type Item = $t;
            fn into_par_iter(self) -> Par<Self::Iter> {
                Par(self)
            }
        }
    )*};
}
impl_into_par_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `.par_iter()` on `&self` (mirrors rayon).
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a shared reference).
    type Item: 'data;
    /// Underlying serial iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'data self) -> Par<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Par<Self::Iter> {
        self.into_par_iter()
    }
}

/// `.par_iter_mut()` on `&mut self` (mirrors rayon).
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type (an exclusive reference).
    type Item: 'data;
    /// Underlying serial iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoParallelIterator,
{
    type Item = <&'data mut C as IntoParallelIterator>::Item;
    type Iter = <&'data mut C as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
        self.into_par_iter()
    }
}

/// Parallel operations on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Chunked iteration.
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

/// Parallel operations on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Chunked mutable iteration.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;

    /// Unstable sort (sequential in this shim).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Unstable sort by key (sequential in this shim).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);

    /// Unstable sort by comparator (sequential in this shim).
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f)
    }

    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare)
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` worker threads (recorded but unused: execution is
    /// sequential in this shim).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible here.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A (nominal) thread pool. `install` simply runs the closure on the
/// current thread.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` "inside" the pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// Configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Global thread count rayon would use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_zip_sum_collect() {
        let a = vec![1u64, 2, 3];
        let mut b = vec![10u64, 20, 30];
        let s: u64 = a
            .par_iter()
            .zip(b.par_iter_mut())
            .map(|(x, y)| *x + *y)
            .sum();
        assert_eq!(s, 66);
        let v: Vec<u64> = (0..5u64).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn sort_and_chunks() {
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable_by_key(|&x| x);
        assert_eq!(v, vec![1, 2, 3]);
        let mut w = vec![0u32; 6];
        w.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(w, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn pool_install_runs() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 42), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
