//! Offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate, implemented over `std::sync`. parking_lot's API differs from
//! std's in that locks are not poisoning — `lock()` returns the guard
//! directly — which this shim reproduces by unwrapping poison errors
//! (a poisoned lock here means a thread already panicked; propagating
//! the inner guard matches parking_lot's behavior of simply continuing).

use std::sync::PoisonError;

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `t`.
    pub fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader–writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `t`.
    pub fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
