//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate's scoped threads and MPMC channels.
//!
//! * [`thread`] — scoped threads over `std::thread::scope` (which has
//!   provided the same borrow-the-stack semantics since Rust 1.63).
//!   Genuinely parallel: the static scheduling path of the PSPC builder
//!   really does run one OS thread per vertex range.
//! * [`channel`] — multi-producer **multi-consumer** channels (std's
//!   `mpsc` is single-consumer) over a `Mutex<VecDeque>` + two condvars.
//!   [`channel::bounded`] is the submission queue of the
//!   `pspc_service` persistent worker pool: `try_send` on a full queue
//!   returns [`channel::TrySendError::Full`], which is exactly the
//!   admission-control "reject, don't hang" signal the query daemon
//!   needs. Disconnect semantics match the real crate: receivers drain
//!   every queued message before seeing `Disconnected`, so dropping the
//!   last sender performs a graceful drain, not an abort.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Result of a scope: `Err` if any spawned thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle passed to the scope closure; spawns threads that may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam convention) so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope: all threads spawned within are joined before it
    /// returns. Returns `Err` if any spawned thread panicked (matching
    /// crossbeam, which aggregates child panics instead of propagating).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// MPMC channels (mirrors `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
    use std::time::{Duration, Instant};

    /// Shared channel state: the queue plus liveness counters.
    struct State<T> {
        queue: VecDeque<T>,
        /// Live [`Sender`] clones; 0 ⇒ the channel is disconnected for
        /// receivers once the queue drains.
        senders: usize,
        /// Live [`Receiver`] clones; 0 ⇒ sends fail immediately.
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        /// Signalled when a message is pushed or all senders vanish.
        not_empty: Condvar,
        /// Signalled when a message is popped or all receivers vanish.
        not_full: Condvar,
    }

    fn lock<T>(inner: &Inner<T>) -> MutexGuard<'_, State<T>> {
        inner.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Error from [`Sender::send`]: every receiver is gone; the message
    /// comes back to the caller.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without a `T: Debug` bound, so channels
    // of non-Debug payloads still compose with `expect`/`unwrap`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error from [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity (the admission-control signal).
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> TrySendError<T> {
        /// Recovers the rejected message.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
            }
        }

        /// Whether the error is the queue-full rejection.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    /// Error from [`Receiver::recv`]: all senders gone and the queue is
    /// empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty (senders still live).
        Empty,
        /// All senders gone and the queue is empty.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the deadline.
        Timeout,
        /// All senders gone and the queue is empty.
        Disconnected,
    }

    /// The sending half. Clonable; the channel disconnects for receivers
    /// when the last clone drops and the queue drains.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half. Clonable — this is what makes the channel
    /// MPMC: every worker thread of a pool holds one clone and `recv`s
    /// from the same queue.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, blocking while the queue is at capacity
        /// (backpressure). Fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .inner
                            .not_full
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues `msg` without blocking: [`TrySendError::Full`] when
        /// the queue is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = lock(&self.inner);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.inner.capacity {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The queue bound (`None` = unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.inner.capacity
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the oldest message, blocking until one arrives.
        /// Returns `Err` only when all senders are gone **and** the queue
        /// is empty — queued work is always drained first.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.inner);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .inner
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.inner);
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeues, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.inner);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.inner);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake every blocked receiver so they observe disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.not_full.notify_all();
            }
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// A bounded MPMC channel holding at most `cap` messages. `cap = 0`
    /// (a rendezvous channel in real crossbeam) is approximated with
    /// capacity 1 — no caller in this workspace uses it.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel::{self, RecvTimeoutError, TryRecvError, TrySendError};
    use std::time::Duration;

    #[test]
    fn fifo_order_and_len() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert!(!rx.is_empty());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_rejects_when_full() {
        let (tx, rx) = channel::bounded(2);
        assert_eq!(tx.capacity(), Some(2));
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        // Draining one slot re-admits.
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn drop_last_sender_drains_then_disconnects() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        drop(tx);
        // Queued messages survive the disconnect...
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Ok(8));
        // ...and only then does the receiver see it.
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn mpmc_workers_share_one_queue() {
        let (tx, rx) = channel::bounded::<u64>(64);
        let total: u64 = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for v in 1..=100u64 {
                tx.send(v).unwrap();
            }
            drop(tx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Every message consumed exactly once, by some worker.
        assert_eq!(total, 5050);
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                // Blocks until the main thread drains a slot.
                tx.send(2).unwrap();
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        });
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_borrow_and_join() {
        let mut parts = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (i, p) in parts.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *p = (i as u64 + 1) * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(parts, vec![10, 20, 30, 40]);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
