//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate's scoped threads, implemented over `std::thread::scope` (which
//! has provided the same borrow-the-stack semantics since Rust 1.63).
//! Unlike the rayon shim this one is genuinely parallel: the static
//! scheduling path of the PSPC builder really does run one OS thread per
//! vertex range.

/// Scoped threads (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Result of a scope: `Err` if any spawned thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle passed to the scope closure; spawns threads that may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam convention) so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope: all threads spawned within are joined before it
    /// returns. Returns `Err` if any spawned thread panicked (matching
    /// crossbeam, which aggregates child panics instead of propagating).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn threads_borrow_and_join() {
        let mut parts = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (i, p) in parts.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *p = (i as u64 + 1) * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(parts, vec![10, 20, 30, 40]);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
