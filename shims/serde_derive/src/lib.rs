//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as inert
//! annotations — all actual (de)serialization is hand-rolled through the
//! `bytes` snapshot formats — so these derives expand to nothing. That
//! keeps the derive attribute valid on any type (generics, enums, where
//! clauses) without needing `syn`/`quote`, which are unavailable offline.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
