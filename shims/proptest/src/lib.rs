//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`any`], and the
//! `prop_assert*` macros. Differences from real proptest, chosen for a
//! hermetic offline build:
//!
//! * **Deterministic seeding.** Each test's case stream is derived from a
//!   stable hash of the test name (override the base with the
//!   `PROPTEST_SEED` env var), so failures reproduce exactly across runs
//!   and machines instead of depending on an OS entropy source.
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering via the standard assert messages; it is not
//!   minimized first.
//! * **Case-count override.** `PROPTEST_CASES` scales suites up (soak
//!   testing) or down (smoke testing) without editing each
//!   `ProptestConfig`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while sampling one case.
pub type TestRng = SmallRng;

/// Per-suite configuration (subset of real proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Real proptest strategies generate a whole shrink tree; this shim only
/// samples, which is all the workspace's tests observe short of a failure.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into a dependent second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Canonical whole-domain strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each value has a length in `len` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a over the test path: a stable, platform-independent base seed.
pub fn seed_for(test_name: &str) -> u64 {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x50_53_50_43); // "PSPC"
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ base
}

/// Effective case count: the config's, unless `PROPTEST_CASES` overrides.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases)
}

/// Runs `body` once per case with a per-case deterministic RNG. Called by
/// the [`proptest!`] expansion; not part of real proptest's public API.
pub fn run_cases(config: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    let base = seed_for(test_name);
    for case in 0..effective_cases(config) {
        let mut rng = TestRng::seed_from_u64(
            base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
        );
        body(&mut rng);
    }
}

/// Defines property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     /// docs
///     #[test]
///     fn prop(x in 0..10u32, v in vec(any::<bool>(), 0..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, concat!(module_path!(), "::", stringify!($name)), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::collection::vec;
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3..9u32, y in 0usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_of_tuples(v in vec((0u32..10, 0u32..10), 0..8)) {
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..20).prop_flat_map(|n| {
            vec(0..n as u32, 1..4).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = pair;
            prop_assert!(xs.iter().all(|&x| (x as usize) < n));
        }

        #[test]
        fn any_bool_and_just(b in any::<bool>(), k in Just(7u8)) {
            prop_assert!(matches!(b, true | false));
            prop_assert_eq!(k, 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = ProptestConfig::with_cases(5);
        let mut a = Vec::new();
        super::run_cases(&cfg, "x", |rng| a.push((0..1000u32).sample(rng)));
        let mut b = Vec::new();
        super::run_cases(&cfg, "x", |rng| b.push((0..1000u32).sample(rng)));
        assert_eq!(a, b);
    }
}
