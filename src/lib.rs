//! # pspc — Parallel Shortest Path Counting
//!
//! A Rust implementation of *PSPC: Efficient Parallel Shortest Path
//! Counting on Large-Scale Graphs* (Peng, Yu & Wang, ICDE 2023): a 2-hop
//! hub-labeling index that answers *how many* shortest paths connect two
//! vertices (and at what distance) in microseconds, built in parallel
//! without the rank-order dependency of prior constructions.
//!
//! This crate is the facade over the workspace:
//!
//! * [`graph`] ([`pspc_graph`]) — CSR graphs, generators, traversal, the
//!   brute-force counting oracle;
//! * [`order`] ([`pspc_order`]) — degree / tree-decomposition /
//!   significant-path / hybrid vertex orderings;
//! * [`core`] ([`pspc_core`]) — the ESPC index, the sequential HP-SPC
//!   baseline, the parallel PSPC builder, reductions and serialization;
//! * [`service`] ([`pspc_service`]) — the throughput-oriented batch
//!   query engine (persistent worker pool, bounded submission queue,
//!   chunked sharding, admission control);
//! * [`server`] ([`pspc_server`]) — the network serving daemon (HTTP +
//!   framed binary protocol on one port, load shedding, live metrics)
//!   and the `pspc` CLI (`build`/`query`/`bench`/`serve`).
//!
//! ## Quickstart
//!
//! ```
//! use pspc::prelude::*;
//!
//! // A diamond: two shortest paths from 0 to 3.
//! let g = GraphBuilder::new().edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build();
//! let (index, _stats) = build_pspc(&g, &PspcConfig::default());
//! let ans = index.query(0, 3);
//! assert_eq!((ans.dist, ans.count), (2, 2));
//! ```

#![warn(missing_docs)]

pub mod applications;

pub use pspc_core as core;
pub use pspc_graph as graph;
pub use pspc_order as order;
pub use pspc_server as server;
pub use pspc_service as service;

pub use pspc_core::{
    build_hpspc, build_pspc, BatchScratch, Count, DiSpcIndex, DynamicDistanceIndex, IndexStats,
    LabelArena, LabelEntry, LabelSet, LabelView, Paradigm, PspcBuildStats, PspcConfig,
    ReducedIndex, SchedulePlan, SnapshotKind, SpcIndex,
};
pub use pspc_graph::{Graph, GraphBuilder, GraphStats, SpcAnswer, VertexId};
pub use pspc_order::{OrderingStrategy, VertexOrder};
pub use pspc_server::{RemoteClient, ServerHandle};
pub use pspc_service::{EngineConfig, IndexKind, InsertError, QueryEngine};

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use pspc_core::builder::{build_pspc, build_pspc_with_order};
    pub use pspc_core::hpspc::{build_hpspc, build_hpspc_with_order};
    pub use pspc_core::{Count, Paradigm, PspcConfig, ReducedIndex, SchedulePlan, SpcIndex};
    pub use pspc_graph::{Graph, GraphBuilder, SpcAnswer, VertexId};
    pub use pspc_order::{OrderingStrategy, VertexOrder};
}
