//! Application-level algorithms built on the SPC index — the paper's two
//! motivating use cases (§I) as a library API.
//!
//! * [`pair_dependency`] / [`betweenness_scores`] / [`greedy_group_betweenness`]
//!   — group-betweenness machinery after Puzis et al., where every
//!   ingredient is an SPC query (Application 1);
//! * [`top_k_flexible`] — nearest-neighbor ranking with distance ties
//!   broken by the number of alternative shortest routes (Application 2).

use pspc_core::{build_pspc, PspcConfig, SpcIndex};
use pspc_graph::{Graph, GraphBuilder, SpcAnswer, VertexId};

/// Fraction of shortest `s → t` paths that pass through `v`, evaluated
/// from SPC queries only: non-zero iff `d(s,v) + d(v,t) = d(s,t)`, in
/// which case it is `spc(s,v)·spc(v,t)/spc(s,t)`.
///
/// `base` supplies `spc(s,t)`; `index` supplies the two legs. Passing the
/// same index for both gives the classic pair dependency; passing an index
/// built on `G ∖ C` as `index` restricts to paths avoiding `C` (the
/// incremental-GBC update step).
pub fn pair_dependency(
    base: &SpcIndex,
    index: &SpcIndex,
    s: VertexId,
    t: VertexId,
    v: VertexId,
) -> f64 {
    if v == s || v == t || s == t {
        return 0.0;
    }
    let st = base.query(s, t);
    if !st.is_reachable() || st.count == 0 {
        return 0.0;
    }
    let sv = index.query(s, v);
    let vt = index.query(v, t);
    if !sv.is_reachable() || !vt.is_reachable() {
        return 0.0;
    }
    if sv.dist as u32 + vt.dist as u32 != st.dist as u32 {
        return 0.0;
    }
    (sv.count as f64 * vt.count as f64) / st.count as f64
}

/// Betweenness score of every vertex over the given source–target pairs
/// (exact over those pairs; feed all ordered pairs for exact betweenness,
/// or a sample for the usual estimator).
pub fn betweenness_scores(index: &SpcIndex, pairs: &[(VertexId, VertexId)], n: usize) -> Vec<f64> {
    let mut score = vec![0.0f64; n];
    for &(s, t) in pairs {
        if s == t {
            continue;
        }
        let st = index.query(s, t);
        if !st.is_reachable() || st.count == 0 || st.dist == 0 {
            continue;
        }
        // Accumulate dependency for vertices on some shortest path.
        // For exactness without enumerating paths, test every vertex; for
        // large graphs callers should sample pairs (the cost is n queries
        // per pair either way — this is the GBC precompute regime).
        for v in 0..n as VertexId {
            score[v as usize] += pair_dependency(index, index, s, t, v);
        }
    }
    score
}

/// Greedy group-betweenness maximization: selects `k` vertices, each round
/// adding the vertex with the largest marginal coverage of the sampled
/// pairs, re-indexing `G ∖ C` between rounds (the incremental GBC scheme,
/// with the SPC index replacing the precomputed matrices of Puzis et al.).
///
/// Returns the selected group and the estimated `B̈(C)` after each round.
pub fn greedy_group_betweenness(
    g: &Graph,
    pairs: &[(VertexId, VertexId)],
    k: usize,
    config: &PspcConfig,
) -> (Vec<VertexId>, Vec<f64>) {
    let n = g.num_vertices();
    let (base, _) = build_pspc(g, config);
    let mut current = base.clone();
    let mut group: Vec<VertexId> = Vec::new();
    let mut trajectory = Vec::new();
    let mut total = 0.0f64;
    for _ in 0..k.min(n) {
        let mut best: Option<(f64, VertexId)> = None;
        for v in 0..n as VertexId {
            if group.contains(&v) {
                continue;
            }
            let gain: f64 = pairs
                .iter()
                .map(|&(s, t)| pair_dependency(&base, &current, s, t, v))
                .sum();
            // Deterministic tie-break on the smaller id.
            if best.is_none_or(|(bg, bv)| gain > bg || (gain == bg && v < bv)) {
                best = Some((gain, v));
            }
        }
        let Some((gain, v)) = best else { break };
        group.push(v);
        total += gain;
        trajectory.push(total);
        let (next, _) = build_pspc(&without_vertices(g, &group), config);
        current = next;
    }
    (group, trajectory)
}

/// The subgraph with `removed` vertices isolated (ids stay stable).
pub fn without_vertices(g: &Graph, removed: &[VertexId]) -> Graph {
    let gone: std::collections::HashSet<VertexId> = removed.iter().copied().collect();
    let mut b = GraphBuilder::new().num_vertices(g.num_vertices());
    for (u, v) in g.edges() {
        if !gone.contains(&u) && !gone.contains(&v) {
            b.push_edge(u, v);
        }
    }
    b.build()
}

/// Top-`k` candidates nearest to `query`, distance ties broken by the
/// *number of shortest routes* (more routes = more routing flexibility —
/// the paper's road-network application). Unreachable candidates are
/// dropped; remaining ties break on the smaller vertex id.
pub fn top_k_flexible(
    index: &SpcIndex,
    query: VertexId,
    candidates: &[VertexId],
    k: usize,
) -> Vec<(VertexId, SpcAnswer)> {
    let mut ranked: Vec<(VertexId, SpcAnswer)> = candidates
        .iter()
        .map(|&c| (c, index.query(query, c)))
        .filter(|(_, a)| a.is_reachable())
        .collect();
    ranked.sort_by_key(|&(c, a)| (a.dist, std::cmp::Reverse(a.count), c));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use pspc_graph::spc_bfs::spc_pair;

    /// Brute-force betweenness by shortest-path enumeration (DFS), for
    /// validating the index-based dependency on tiny graphs.
    fn brute_dependency(g: &Graph, s: VertexId, t: VertexId, v: VertexId) -> f64 {
        if v == s || v == t || s == t {
            return 0.0;
        }
        let st = spc_pair(g, s, t);
        if !st.is_reachable() {
            return 0.0;
        }
        let sv = spc_pair(g, s, v);
        let vt = spc_pair(g, v, t);
        if !sv.is_reachable() || !vt.is_reachable() {
            return 0.0;
        }
        if sv.dist + vt.dist != st.dist {
            return 0.0;
        }
        (sv.count as f64 * vt.count as f64) / st.count as f64
    }

    fn diamond_tail() -> Graph {
        GraphBuilder::new()
            .edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
            .build()
    }

    #[test]
    fn dependency_matches_brute_force() {
        let g = diamond_tail();
        let (idx, _) = build_pspc(&g, &PspcConfig::default());
        for s in 0..5u32 {
            for t in 0..5u32 {
                for v in 0..5u32 {
                    let got = pair_dependency(&idx, &idx, s, t, v);
                    let want = brute_dependency(&g, s, t, v);
                    assert!((got - want).abs() < 1e-12, "({s},{t},{v}): {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn diamond_middles_split_dependency() {
        let g = diamond_tail();
        let (idx, _) = build_pspc(&g, &PspcConfig::default());
        // Two shortest 0-3 paths, one through each middle vertex.
        assert!((pair_dependency(&idx, &idx, 0, 3, 1) - 0.5).abs() < 1e-12);
        assert!((pair_dependency(&idx, &idx, 0, 3, 2) - 0.5).abs() < 1e-12);
        // Vertex 3 carries all 0-4 paths.
        assert!((pair_dependency(&idx, &idx, 0, 4, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn betweenness_identifies_cut_vertex() {
        let g = diamond_tail();
        let (idx, _) = build_pspc(&g, &PspcConfig::default());
        let pairs: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|s| (0..5u32).map(move |t| (s, t)))
            .filter(|&(s, t)| s != t)
            .collect();
        let scores = betweenness_scores(&idx, &pairs, 5);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 3, "vertex 3 is the articulation point: {scores:?}");
    }

    #[test]
    fn greedy_group_prefers_central_vertices() {
        let g = diamond_tail();
        let pairs: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|s| (0..5u32).map(move |t| (s, t)))
            .filter(|&(s, t)| s != t)
            .collect();
        let (group, traj) = greedy_group_betweenness(&g, &pairs, 2, &PspcConfig::default());
        assert_eq!(group[0], 3);
        assert_eq!(traj.len(), 2);
        assert!(traj[1] >= traj[0], "coverage must be monotone");
    }

    #[test]
    fn top_k_breaks_ties_by_count() {
        // 0 at distance 2 from both 3 (two routes) and 4 (one route).
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (1, 3), (2, 3), (1, 4)])
            .build();
        let (idx, _) = build_pspc(&g, &PspcConfig::default());
        let ranked = top_k_flexible(&idx, 0, &[3, 4], 2);
        assert_eq!(ranked[0].0, 3, "two routes beat one at equal distance");
        assert_eq!(ranked[0].1.count, 2);
        assert_eq!(ranked[1].0, 4);
    }

    #[test]
    fn top_k_drops_unreachable() {
        let g = GraphBuilder::new()
            .num_vertices(4)
            .edges([(0, 1), (1, 2)])
            .build();
        let (idx, _) = build_pspc(&g, &PspcConfig::default());
        let ranked = top_k_flexible(&idx, 0, &[1, 2, 3], 10);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, 1);
    }

    #[test]
    fn without_vertices_isolates() {
        let g = diamond_tail();
        let h = without_vertices(&g, &[3]);
        assert_eq!(h.degree(3), 0);
        assert_eq!(h.num_vertices(), 5);
        assert!(h.has_edge(0, 1));
        assert!(!h.has_edge(1, 3));
    }
}
