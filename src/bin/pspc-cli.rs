//! `pspc-cli` — build, persist and query shortest-path-counting indexes
//! from the command line.
//!
//! ```text
//! pspc-cli stats  <edges.txt>
//! pspc-cli build  <edges.txt> -o index.bin [--order degree|td|sig|hybrid[:δ]]
//!                 [--landmarks k] [--threads t] [--push] [--static]
//! pspc-cli query  <index.bin> <s> <t> [<s> <t> ...]
//! pspc-cli bench  <index.bin> [--count n] [--seed s]
//! ```
//!
//! Edge lists are SNAP-style text (`u v` per line, `#`/`%` comments).

use pspc::core::serialize::{index_from_binary, index_to_binary};
use pspc::graph::io::read_edge_list_file;
use pspc::prelude::*;
use pspc::GraphStats;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: pspc-cli stats <edges> | build <edges> -o <out> [opts] | \
                 query <index> <s> <t>... | bench <index> [--count n] [--seed s]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some(other) => Err(format!("unknown command {other}")),
        None => Err("missing command".into()),
    }
}

/// Parses `--order degree|td|sig|hybrid[:delta]`.
fn parse_order(s: &str) -> Result<OrderingStrategy, String> {
    match s {
        "degree" => Ok(OrderingStrategy::Degree),
        "td" => Ok(OrderingStrategy::TreeDecomposition),
        "sig" => Ok(OrderingStrategy::SignificantPath),
        "hybrid" => Ok(OrderingStrategy::DEFAULT),
        other => {
            if let Some(d) = other.strip_prefix("hybrid:") {
                let delta: u32 = d.parse().map_err(|e| format!("bad δ in {other}: {e}"))?;
                Ok(OrderingStrategy::Hybrid { delta })
            } else {
                Err(format!("unknown order {other} (degree|td|sig|hybrid[:δ])"))
            }
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats: missing edge-list path")?;
    let g = read_edge_list_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    let s = GraphStats::compute(&g);
    println!("vertices           {}", s.num_vertices);
    println!("edges              {}", s.num_edges);
    println!("avg degree         {:.2}", s.avg_degree);
    println!("max degree         {}", s.max_degree);
    println!("components         {}", s.num_components);
    println!("diameter (approx)  {}", s.diameter_estimate);
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut config = PspcConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("missing value for {flag}"))
        };
        match a.as_str() {
            "-o" | "--output" => output = Some(value("-o")?),
            "--order" => config.ordering = parse_order(value("--order")?)?,
            "--landmarks" => {
                config.num_landmarks = value("--landmarks")?
                    .parse()
                    .map_err(|e| format!("bad --landmarks: {e}"))?
            }
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--push" => config.paradigm = Paradigm::Push,
            "--static" => config.schedule = SchedulePlan::Static,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => {
                if input.is_some() {
                    return Err(format!("unexpected positional argument {path}"));
                }
                input = Some(path);
            }
        }
    }
    let input = input.ok_or("build: missing edge-list path")?;
    let output = output.ok_or("build: missing -o <output>")?;
    let g = read_edge_list_file(input).map_err(|e| format!("reading {input}: {e}"))?;
    eprintln!(
        "building index for {} vertices / {} edges ...",
        g.num_vertices(),
        g.num_edges()
    );
    let (index, build) = build_pspc(&g, &config);
    let s = index.stats();
    eprintln!(
        "built in {:.2}s (order {:.2}s, landmarks {:.2}s, construction {:.2}s; \
         {} iterations)",
        s.total_seconds(),
        s.order_seconds,
        s.landmark_seconds,
        s.construction_seconds,
        build.iterations
    );
    eprintln!(
        "{} entries, {:.2} MiB, avg label {:.1}, max label {}",
        s.total_entries,
        s.size_mib(),
        s.avg_label_size,
        s.max_label_size
    );
    let bytes = index_to_binary(&index);
    std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
    eprintln!("snapshot written to {output} ({} bytes)", bytes.len());
    Ok(())
}

fn load_index(path: &str) -> Result<SpcIndex, String> {
    let data = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    index_from_binary(pspc::core::serialize::Bytes::from(data))
        .map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("query: missing index path")?;
    let rest = &args[1..];
    if rest.is_empty() || !rest.len().is_multiple_of(2) {
        return Err("query: need an even number of vertex ids".into());
    }
    let index = load_index(path)?;
    let n = index.num_vertices() as u64;
    for pair in rest.chunks_exact(2) {
        let s: u64 = pair[0].parse().map_err(|e| format!("bad vertex: {e}"))?;
        let t: u64 = pair[1].parse().map_err(|e| format!("bad vertex: {e}"))?;
        if s >= n || t >= n {
            return Err(format!("vertex out of range (n = {n})"));
        }
        let ans = index.query(s as u32, t as u32);
        if ans.is_reachable() {
            println!("SPC({s}, {t}) = {} paths, distance {}", ans.count, ans.dist);
        } else {
            println!("SPC({s}, {t}) = unreachable");
        }
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("bench: missing index path")?;
    let mut count = 100_000usize;
    let mut seed = 42u64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--count" => {
                count = it
                    .next()
                    .ok_or("missing --count value")?
                    .parse()
                    .map_err(|e| format!("bad --count: {e}"))?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("missing --seed value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let index = load_index(path)?;
    let n = index.num_vertices() as u64;
    // xorshift-style deterministic pairs without pulling a CLI rand dep.
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n) as u32
    };
    let pairs: Vec<(u32, u32)> = (0..count).map(|_| (next(), next())).collect();
    let t0 = Instant::now();
    let answers = index.query_batch_sequential(&pairs);
    let secs = t0.elapsed().as_secs_f64();
    let reachable = answers.iter().filter(|a| a.is_reachable()).count();
    println!(
        "{count} queries in {:.3}s ({:.2} us/query), {reachable} reachable",
        secs,
        secs / count as f64 * 1e6
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_parsing() {
        assert_eq!(parse_order("degree").unwrap(), OrderingStrategy::Degree);
        assert_eq!(
            parse_order("hybrid:9").unwrap(),
            OrderingStrategy::Hybrid { delta: 9 }
        );
        assert!(parse_order("nope").is_err());
        assert!(parse_order("hybrid:x").is_err());
    }

    #[test]
    fn full_pipeline_through_temp_files() {
        let dir = std::env::temp_dir();
        let edges = dir.join("pspc_cli_test_edges.txt");
        let index = dir.join("pspc_cli_test_index.bin");
        std::fs::write(&edges, "0 1\n0 2\n1 3\n2 3\n3 4\n").unwrap();
        let e = edges.to_str().unwrap().to_string();
        let i = index.to_str().unwrap().to_string();
        run(&["stats".into(), e.clone()]).unwrap();
        run(&[
            "build".into(),
            e,
            "-o".into(),
            i.clone(),
            "--order".into(),
            "degree".into(),
            "--landmarks".into(),
            "2".into(),
        ])
        .unwrap();
        run(&["query".into(), i.clone(), "0".into(), "3".into()]).unwrap();
        run(&["bench".into(), i.clone(), "--count".into(), "100".into()]).unwrap();
        assert!(run(&["query".into(), i.clone(), "0".into(), "99".into()]).is_err());
        assert!(run(&["query".into(), i, "0".into()]).is_err());
        std::fs::remove_file(edges).ok();
        std::fs::remove_file(index).ok();
    }

    #[test]
    fn rejects_unknown_commands() {
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&[]).is_err());
    }
}
