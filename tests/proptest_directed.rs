//! Property-based invariants of the directed index extension.

use proptest::collection::vec;
use proptest::prelude::*;
use pspc::core::directed::hpspc::build_di_hpspc_with_order;
use pspc::core::directed::pspc::{build_di_pspc_with_order, DiPspcConfig};
use pspc::core::directed::{di_degree_order, DiSpcIndex};
use pspc::graph::digraph::{di_spc_pair, DiGraph, DiGraphBuilder};

fn arb_digraph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n).prop_flat_map(move |n| {
        vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |arcs| DiGraphBuilder::new().num_vertices(n).arcs(arcs).build())
    })
}

fn build_both(g: &DiGraph, landmarks: usize) -> (DiSpcIndex, DiSpcIndex) {
    let order = di_degree_order(g);
    let seq = build_di_hpspc_with_order(g, order.clone());
    let par = build_di_pspc_with_order(
        g,
        order,
        &DiPspcConfig {
            num_landmarks: landmarks,
            ..DiPspcConfig::default()
        },
    );
    (seq, par)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The directed ESPC is unique given the order: sequential and parallel
    /// builders agree on both label directions.
    #[test]
    fn directed_espc_unique(g in arb_digraph(30, 160), lm in 0usize..6) {
        let (seq, par) = build_both(&g, lm);
        prop_assert_eq!(seq.lin_arena(), par.lin_arena());
        prop_assert_eq!(seq.lout_arena(), par.lout_arena());
    }

    /// Directed queries equal the forward counting-BFS oracle on all pairs.
    #[test]
    fn directed_queries_exact(g in arb_digraph(25, 120)) {
        let (_, idx) = build_both(&g, 4);
        let n = g.num_vertices() as u32;
        for s in 0..n {
            for t in 0..n {
                prop_assert_eq!(idx.query(s, t), di_spc_pair(&g, s, t));
            }
        }
    }

    /// On a symmetric digraph the directed index agrees with the
    /// undirected one.
    #[test]
    fn symmetric_digraph_matches_undirected(edges in vec((0u32..20, 0u32..20), 1..60)) {
        use pspc::graph::digraph::from_undirected;
        use pspc::prelude::*;
        let ug = GraphBuilder::new().num_vertices(20).edges(edges).build();
        let dg = from_undirected(&ug);
        let (_, didx) = build_both(&dg, 0);
        let (uidx, _) = build_pspc(&ug, &PspcConfig { num_landmarks: 0, ..PspcConfig::default() });
        for s in 0..20u32 {
            for t in 0..20u32 {
                prop_assert_eq!(didx.query(s, t), uidx.query(s, t));
            }
        }
    }
}
