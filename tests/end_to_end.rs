//! Cross-crate integration tests: generators → orderings → builders →
//! queries → reductions → serialization, validated against the brute-force
//! counting-BFS oracle.

use pspc::core::serialize::{index_from_binary, index_to_binary};
use pspc::graph::generators::*;
use pspc::graph::spc_bfs::spc_pair;
use pspc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_pairs(n: u32, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

fn check_index_against_bfs(g: &Graph, idx: &SpcIndex, pairs: &[(u32, u32)], what: &str) {
    for &(s, t) in pairs {
        assert_eq!(
            idx.query(s, t),
            spc_pair(g, s, t),
            "{what}: mismatch ({s},{t})"
        );
    }
}

#[test]
fn every_generator_family_round_trips() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("er", erdos_renyi(300, 900, 1)),
        ("ba", barabasi_albert(300, 3, 2)),
        ("ws", watts_strogatz(300, 3, 0.1, 3)),
        ("rmat", rmat(512, 2000, RmatParams::default(), 4)),
        ("chung_lu", chung_lu_power_law(300, 8.0, 2.4, 5)),
        ("sbm", planted_partition(300, 3, 6.0, 1.0, 6)),
        ("geo", random_geometric(300, 0.1, 7)),
        ("grid", perturbed_grid(15, 15, 0.05, 0.05, 8)),
    ];
    for (name, g) in &graphs {
        let (idx, _) = build_pspc(g, &PspcConfig::default());
        assert!(idx.validate().is_ok(), "{name}: invalid index");
        let pairs = sample_pairs(g.num_vertices() as u32, 60, 42);
        check_index_against_bfs(g, &idx, &pairs, name);
    }
}

#[test]
fn hpspc_and_pspc_agree_on_all_orderings() {
    let g = chung_lu_power_law(250, 7.0, 2.4, 11);
    for strategy in [
        OrderingStrategy::Degree,
        OrderingStrategy::TreeDecomposition,
        OrderingStrategy::SignificantPath,
        OrderingStrategy::Hybrid { delta: 3 },
    ] {
        let order = strategy.compute(&g);
        let seq = build_hpspc_with_order(&g, order.clone(), None);
        let cfg = PspcConfig {
            ordering: strategy,
            ..PspcConfig::default()
        };
        let (par, _) = build_pspc_with_order(&g, order, None, &cfg);
        assert_eq!(
            seq.label_arena(),
            par.label_arena(),
            "{}: ESPC must be unique given the order",
            strategy.name()
        );
    }
}

#[test]
fn reduced_index_is_exact_end_to_end() {
    let g = barabasi_albert(400, 2, 17);
    let ri = ReducedIndex::build(&g, &PspcConfig::default());
    assert!(ri.reduced_vertices() < g.num_vertices());
    for (s, t) in sample_pairs(400, 120, 3) {
        assert_eq!(ri.query(s, t), spc_pair(&g, s, t), "({s},{t})");
    }
}

#[test]
fn serialization_survives_disk_round_trip() {
    let g = erdos_renyi(200, 700, 23);
    let (idx, _) = build_pspc(&g, &PspcConfig::default());
    let bytes = index_to_binary(&idx);
    let dir = std::env::temp_dir().join("pspc_e2e_snapshot.bin");
    std::fs::write(&dir, &bytes).unwrap();
    let read = std::fs::read(&dir).unwrap();
    std::fs::remove_file(&dir).ok();
    let restored = index_from_binary(bytes::Bytes::from(read)).unwrap();
    let pairs = sample_pairs(200, 80, 5);
    for (s, t) in pairs {
        assert_eq!(idx.query(s, t), restored.query(s, t));
    }
}

#[test]
fn graph_io_pipeline() {
    use pspc::graph::io;
    let g = planted_partition(150, 3, 5.0, 1.0, 9);
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = io::read_edge_list(&buf[..]).unwrap();
    assert_eq!(g, g2);
    let (i1, _) = build_pspc(&g, &PspcConfig::default());
    let (i2, _) = build_pspc(&g2, &PspcConfig::default());
    assert_eq!(i1.label_arena(), i2.label_arena());
}

#[test]
fn distance_only_queries_match_bfs_distances() {
    let g = watts_strogatz(200, 3, 0.2, 31);
    let (idx, _) = build_pspc(&g, &PspcConfig::default());
    let dist = pspc::graph::traversal::bfs_distances(&g, 0);
    for t in 0..200u32 {
        let d = idx.distance(0, t);
        if dist[t as usize] == u16::MAX {
            assert_eq!(d, None);
        } else {
            assert_eq!(d, Some(dist[t as usize]));
        }
    }
}

#[test]
fn batch_queries_consistent_with_singles() {
    let g = barabasi_albert(300, 3, 41);
    let (idx, _) = build_pspc(&g, &PspcConfig::default());
    let pairs = sample_pairs(300, 500, 77);
    let batch = idx.query_batch(&pairs);
    for (i, &(s, t)) in pairs.iter().enumerate() {
        assert_eq!(batch[i], idx.query(s, t));
    }
}
