//! Property-based tests over random graphs: the index invariants the whole
//! system rests on, checked against the brute-force oracle on arbitrary
//! inputs rather than hand-picked examples.

use proptest::collection::vec;
use proptest::prelude::*;
use pspc::graph::spc_bfs::{spc_all_pairs, spc_pair_weighted};
use pspc::prelude::*;

/// Strategy: an arbitrary simple graph with up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| GraphBuilder::new().num_vertices(n).edges(edges).build())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PSPC and HP-SPC build the same ESPC for every graph and order.
    #[test]
    fn espc_unique_given_order(g in arb_graph(40, 120), degree_order in any::<bool>()) {
        let strategy = if degree_order {
            OrderingStrategy::Degree
        } else {
            OrderingStrategy::Hybrid { delta: 2 }
        };
        let order = strategy.compute(&g);
        let seq = build_hpspc_with_order(&g, order.clone(), None);
        let cfg = PspcConfig { ordering: strategy, num_landmarks: 5, ..PspcConfig::default() };
        let (par, _) = build_pspc_with_order(&g, order, None, &cfg);
        prop_assert_eq!(seq.label_arena(), par.label_arena());
    }

    /// Index queries equal the counting-BFS ground truth on ALL pairs.
    #[test]
    fn queries_exact_on_all_pairs(g in arb_graph(30, 90)) {
        let (idx, _) = build_pspc(&g, &PspcConfig { num_landmarks: 4, ..PspcConfig::default() });
        prop_assert!(idx.validate().is_ok());
        let truth = spc_all_pairs(&g);
        let n = g.num_vertices();
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                prop_assert_eq!(idx.query(s, t), truth[s as usize][t as usize]);
            }
        }
    }

    /// Query symmetry: undirected graphs must give SPC(s,t) = SPC(t,s).
    #[test]
    fn query_symmetry(g in arb_graph(35, 100)) {
        let (idx, _) = build_pspc(&g, &PspcConfig::default());
        let n = g.num_vertices() as u32;
        for s in 0..n {
            for t in (s + 1)..n {
                prop_assert_eq!(idx.query(s, t), idx.query(t, s));
            }
        }
    }

    /// The composed reduction pipeline stays exact on arbitrary graphs.
    #[test]
    fn reductions_exact(g in arb_graph(28, 70)) {
        let ri = ReducedIndex::build(&g, &PspcConfig { num_landmarks: 0, ..PspcConfig::default() });
        let truth = spc_all_pairs(&g);
        let n = g.num_vertices() as u32;
        for s in 0..n {
            for t in 0..n {
                prop_assert_eq!(ri.query(s, t), truth[s as usize][t as usize]);
            }
        }
    }

    /// Weighted (multiplicity) counting matches the weighted BFS oracle.
    #[test]
    fn weighted_counting_exact(
        g in arb_graph(24, 60),
        seed in 0u64..1000,
    ) {
        let n = g.num_vertices();
        let weights: Vec<u64> = (0..n).map(|i| 1 + ((i as u64 * 7 + seed) % 4)).collect();
        let order = OrderingStrategy::Degree.compute(&g);
        let (idx, _) = build_pspc_with_order(&g, order, Some(&weights), &PspcConfig::default());
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                if s == t { continue; }
                prop_assert_eq!(
                    idx.query(s, t),
                    spc_pair_weighted(&g, s, t, Some(&weights))
                );
            }
        }
    }

    /// Serialization round-trips every index exactly.
    #[test]
    fn snapshot_round_trip(g in arb_graph(30, 80)) {
        use pspc::core::serialize::{index_from_binary, index_to_binary};
        let (idx, _) = build_pspc(&g, &PspcConfig::default());
        let restored = index_from_binary(index_to_binary(&idx)).unwrap();
        prop_assert_eq!(idx.order(), restored.order());
        prop_assert_eq!(idx.label_arena(), restored.label_arena());
    }
}
