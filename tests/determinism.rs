//! The paper's Exp 2 claim, hardened into tests: the PSPC index is
//! bit-identical across thread counts, schedule plans, propagation
//! paradigms and landmark settings — and identical to the sequential
//! HP-SPC index, because the ESPC is uniquely determined by the vertex
//! order.

use pspc::graph::generators::{chung_lu_power_law, perturbed_grid};
use pspc::prelude::*;

fn build(g: &Graph, order: &VertexOrder, cfg: &PspcConfig) -> SpcIndex {
    let (idx, _) = build_pspc_with_order(g, order.clone(), None, cfg);
    idx
}

#[test]
fn full_configuration_matrix_is_deterministic() {
    let g = chung_lu_power_law(500, 9.0, 2.3, 77);
    let order = OrderingStrategy::DEFAULT.compute(&g);
    let reference = build_hpspc_with_order(&g, order.clone(), None);

    for threads in [1usize, 2, 3, 8] {
        for schedule in [
            SchedulePlan::Static,
            SchedulePlan::Dynamic {
                chunks_per_thread: 1,
            },
            SchedulePlan::Dynamic {
                chunks_per_thread: 16,
            },
        ] {
            for paradigm in [Paradigm::Pull, Paradigm::Push] {
                for (landmarks, bitset) in [(0usize, false), (32, false), (32, true)] {
                    let cfg = PspcConfig {
                        threads,
                        schedule,
                        paradigm,
                        num_landmarks: landmarks,
                        landmark_bitset: bitset,
                        ..PspcConfig::default()
                    };
                    let idx = build(&g, &order, &cfg);
                    assert_eq!(
                        reference.label_arena(),
                        idx.label_arena(),
                        "t={threads} {}/{paradigm:?}/lm={landmarks}/bits={bitset}",
                        schedule.name()
                    );
                }
            }
        }
    }
}

#[test]
fn road_network_configuration_matrix() {
    let g = perturbed_grid(18, 18, 0.08, 0.04, 5);
    let order = OrderingStrategy::TreeDecomposition.compute(&g);
    let reference = build_hpspc_with_order(&g, order.clone(), None);
    for threads in [1usize, 4] {
        for paradigm in [Paradigm::Pull, Paradigm::Push] {
            let cfg = PspcConfig {
                threads,
                paradigm,
                num_landmarks: 16,
                ..PspcConfig::default()
            };
            let idx = build(&g, &order, &cfg);
            assert_eq!(reference.label_arena(), idx.label_arena());
        }
    }
}

#[test]
fn index_size_independent_of_threads() {
    // The exact statement of the paper's Exp 2.
    let g = chung_lu_power_law(400, 8.0, 2.4, 3);
    let sizes: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            let cfg = PspcConfig {
                threads: t,
                ..PspcConfig::default()
            };
            let (idx, _) = build_pspc(&g, &cfg);
            idx.stats().label_bytes
        })
        .collect();
    assert!(sizes.windows(2).all(|w| w[0] == w[1]), "sizes: {sizes:?}");
}
