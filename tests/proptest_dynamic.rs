//! Property-based tests of the incremental distance index
//! (`pspc::core::dynamic`): after any stream of edge insertions, distance
//! queries must equal BFS on the evolved graph.

use proptest::collection::vec;
use proptest::prelude::*;
use pspc::core::dynamic::DynamicDistanceIndex;
use pspc::graph::traversal::bfs_distances;
use pspc::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn insertion_stream_preserves_exact_distances(
        n in 4usize..28,
        initial in vec((0u32..28, 0u32..28), 0..50),
        inserts in vec((0u32..28, 0u32..28), 1..20),
    ) {
        let clamp = |edges: Vec<(u32, u32)>| -> Vec<(u32, u32)> {
            edges
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect()
        };
        let initial = clamp(initial);
        let inserts = clamp(inserts);
        let g = GraphBuilder::new().num_vertices(n).edges(initial.clone()).build();
        let mut idx = DynamicDistanceIndex::build(&g, OrderingStrategy::Degree);

        let mut all_edges = initial;
        for &(u, v) in &inserts {
            idx.insert_edge(u, v);
            all_edges.push((u, v));
        }
        let evolved = GraphBuilder::new()
            .num_vertices(n)
            .edges(all_edges)
            .build();
        for s in 0..n as u32 {
            let truth = bfs_distances(&evolved, s);
            for t in 0..n as u32 {
                let want = (truth[t as usize] != u16::MAX).then_some(truth[t as usize]);
                prop_assert_eq!(idx.distance(s, t), want, "({}, {})", s, t);
            }
        }
    }

    /// The dynamic index built statically agrees with the SPC index's
    /// distance component.
    #[test]
    fn static_build_matches_spc_distances(edges in vec((0u32..24, 0u32..24), 1..70)) {
        let g = GraphBuilder::new().num_vertices(24).edges(edges).build();
        let dyn_idx = DynamicDistanceIndex::build(&g, OrderingStrategy::Degree);
        let (spc_idx, _) = build_pspc(&g, &PspcConfig::default());
        for s in 0..24u32 {
            for t in 0..24u32 {
                prop_assert_eq!(dyn_idx.distance(s, t), spc_idx.distance(s, t));
            }
        }
    }
}
