//! Property-based tests of the incremental distance index
//! (`pspc::core::dynamic`): after any stream of edge insertions, distance
//! queries must equal BFS on the evolved graph. A gated stress case
//! additionally interleaves inserts with engine queries under threads
//! (`cargo test --release --test proptest_dynamic -- --ignored`).

use proptest::collection::vec;
use proptest::prelude::*;
use pspc::core::dynamic::DynamicDistanceIndex;
use pspc::graph::traversal::bfs_distances;
use pspc::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn insertion_stream_preserves_exact_distances(
        n in 4usize..28,
        initial in vec((0u32..28, 0u32..28), 0..50),
        inserts in vec((0u32..28, 0u32..28), 1..20),
    ) {
        let clamp = |edges: Vec<(u32, u32)>| -> Vec<(u32, u32)> {
            edges
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect()
        };
        let initial = clamp(initial);
        let inserts = clamp(inserts);
        let g = GraphBuilder::new().num_vertices(n).edges(initial.clone()).build();
        let mut idx = DynamicDistanceIndex::build(&g, OrderingStrategy::Degree);

        let mut all_edges = initial;
        for &(u, v) in &inserts {
            idx.insert_edge(u, v);
            all_edges.push((u, v));
        }
        let evolved = GraphBuilder::new()
            .num_vertices(n)
            .edges(all_edges)
            .build();
        for s in 0..n as u32 {
            let truth = bfs_distances(&evolved, s);
            for t in 0..n as u32 {
                let want = (truth[t as usize] != u16::MAX).then_some(truth[t as usize]);
                prop_assert_eq!(idx.distance(s, t), want, "({}, {})", s, t);
            }
        }
    }

    /// The dynamic index built statically agrees with the SPC index's
    /// distance component.
    #[test]
    fn static_build_matches_spc_distances(edges in vec((0u32..24, 0u32..24), 1..70)) {
        let g = GraphBuilder::new().num_vertices(24).edges(edges).build();
        let dyn_idx = DynamicDistanceIndex::build(&g, OrderingStrategy::Degree);
        let (spc_idx, _) = build_pspc(&g, &PspcConfig::default());
        for s in 0..24u32 {
            for t in 0..24u32 {
                prop_assert_eq!(dyn_idx.distance(s, t), spc_idx.distance(s, t));
            }
        }
    }
}

/// Stress: edge insertions applied through `QueryEngine::apply_inserts`
/// (the daemon's write-lock path) while worker threads keep answering
/// query batches — no loom, just real threads and real contention.
///
/// Soundness argument that survives the nondeterminism: each engine
/// chunk runs under one read-lock acquisition, so every answered query
/// observes the index after some *prefix* of the insertions, and
/// distances only shrink as edges arrive — every observed distance must
/// lie between the final-graph and initial-graph distances. After the
/// insert stream drains, answers must equal the final graph's exactly.
#[test]
#[ignore = "stress case: run with --ignored"]
fn inserts_interleaved_with_threaded_queries_stay_bounded_and_converge() {
    use pspc::graph::generators::erdos_renyi;
    use pspc::service::{EngineConfig, QueryEngine};
    use std::sync::atomic::{AtomicBool, Ordering};

    const HELD_OUT: usize = 64;
    const QUERY_THREADS: usize = 4;
    const SAMPLE: usize = 400;

    let full_graph = erdos_renyi(1500, 4000, 0x517E55);
    let all_edges: Vec<(u32, u32)> = full_graph.edges().collect();
    let (initial, inserts) = all_edges.split_at(all_edges.len() - HELD_OUT);
    let g0 = GraphBuilder::new()
        .num_vertices(full_graph.num_vertices())
        .edges(initial.to_vec())
        .build();

    // Deterministic sample pairs plus their distance envelope.
    let n = full_graph.num_vertices() as u32;
    let mut state = 0xDEC0DEu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as u32
    };
    let pairs: Vec<(u32, u32)> = (0..SAMPLE).map(|_| (next(), next())).collect();
    let initial_idx = DynamicDistanceIndex::build(&g0, OrderingStrategy::Degree);
    let final_idx = DynamicDistanceIndex::build(&full_graph, OrderingStrategy::Degree);
    let envelope: Vec<(u16, u16)> = pairs
        .iter()
        .map(|&(s, t)| {
            (
                final_idx.distance(s, t).unwrap_or(u16::MAX),
                initial_idx.distance(s, t).unwrap_or(u16::MAX),
            )
        })
        .collect();

    let engine = QueryEngine::with_kind(
        initial_idx,
        EngineConfig {
            workers: QUERY_THREADS,
            chunk_size: 32,
            ..EngineConfig::default()
        },
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..QUERY_THREADS {
            let (engine, pairs, envelope, stop) = (&engine, &pairs, &envelope, &stop);
            s.spawn(move || {
                // Do-while: every thread answers at least one batch, so
                // the insert stream always contends with live queries.
                loop {
                    for (a, &(lo, hi)) in engine.run(pairs).iter().zip(envelope) {
                        assert!(
                            lo <= a.dist && a.dist <= hi,
                            "observed distance {} outside the [{lo}, {hi}] envelope",
                            a.dist
                        );
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }
        for &(u, v) in inserts {
            engine
                .apply_inserts(&[(u, v)])
                .expect("dynamic engine accepts inserts");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Converged: every insert is visible, answers equal the final graph.
    for (a, &(lo, _)) in engine.run(&pairs).iter().zip(&envelope) {
        assert_eq!(
            a.dist, lo,
            "post-drain distance must equal the final graph's"
        );
    }
}
