//! Heavy soak tests — the same invariants as the fast suites, pushed to
//! graph sizes that take seconds-to-minutes rather than milliseconds.
//!
//! All tests here are `#[ignore]`d so the tier-1 `cargo test -q` stays
//! fast; run them explicitly with
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```
//!
//! (Release mode recommended: the brute-force oracle is O(n·m) per
//! source.) The property suites can separately be scaled up with the
//! `PROPTEST_CASES` env var; see tests/README.md.

use pspc::graph::generators::{barabasi_albert, chung_lu_power_law, perturbed_grid};
use pspc::graph::spc_bfs::spc_from_source;
use pspc::prelude::*;

/// Index answers must match the counting-BFS oracle from every source on
/// a social-style graph two orders of magnitude above the fast suite.
#[test]
#[ignore = "soak: minutes of oracle BFS; run with --ignored"]
fn large_scale_free_exact_from_every_source() {
    let g = barabasi_albert(4_000, 3, 2024);
    let (idx, _) = build_pspc(&g, &PspcConfig::default());
    let n = g.num_vertices() as u32;
    for s in 0..n {
        let (dist, counts) = spc_from_source(&g, s);
        for t in 0..n {
            let ans = idx.query(s, t);
            assert_eq!(
                (ans.dist, ans.count),
                (dist[t as usize], counts[t as usize]),
                "mismatch at ({s},{t})"
            );
        }
    }
}

/// Determinism matrix at soak scale: every (threads, paradigm) cell must
/// produce the identical index on a heavy-tailed graph.
#[test]
#[ignore = "soak: repeated index builds; run with --ignored"]
fn large_build_matrix_deterministic() {
    let g = chung_lu_power_law(10_000, 10.0, 2.3, 555);
    let order = OrderingStrategy::DEFAULT.compute(&g);
    let reference = build_hpspc_with_order(&g, order.clone(), None);
    for threads in [1usize, 4, 16] {
        for paradigm in [Paradigm::Pull, Paradigm::Push] {
            let cfg = PspcConfig {
                threads,
                paradigm,
                ..PspcConfig::default()
            };
            let (idx, _) = build_pspc_with_order(&g, order.clone(), None, &cfg);
            assert_eq!(
                reference.label_arena(),
                idx.label_arena(),
                "threads={threads} paradigm={paradigm:?}"
            );
        }
    }
}

/// Road-network-style soak: tree-decomposition order on a large grid,
/// snapshot round-trip included.
#[test]
#[ignore = "soak: large grid build; run with --ignored"]
fn large_grid_round_trips() {
    use pspc::core::serialize::{index_from_binary, index_to_binary};
    let g = perturbed_grid(120, 120, 0.05, 0.02, 7);
    let cfg = PspcConfig {
        ordering: OrderingStrategy::TreeDecomposition,
        ..PspcConfig::default()
    };
    let (idx, _) = build_pspc(&g, &cfg);
    let restored = index_from_binary(index_to_binary(&idx)).unwrap();
    assert_eq!(idx.label_arena(), restored.label_arena());
    let (dist, counts) = spc_from_source(&g, 0);
    for t in 0..g.num_vertices() as u32 {
        let ans = restored.query(0, t);
        assert_eq!(
            (ans.dist, ans.count),
            (dist[t as usize], counts[t as usize])
        );
    }
}
